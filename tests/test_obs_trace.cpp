// Tests for the request-tracing subsystem (src/obs): span recording and
// ordering (including nested RAII scopes), the per-trace span cap, ring
// eviction with preferential retention of slow traces, request-id
// generation/truncation, the lock-free stage histograms, the environment
// knobs, and the engine integration (lookup / cache_hit / factorize /
// solve / coalesce_wait spans on real evaluations). The concurrency test
// at the bottom is written for TSan: many threads record into one shared
// context and finish disjoint contexts while a reader scrapes the rings
// and histograms.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "serving/serving.hpp"
#include "statespace/random_system.hpp"

namespace api = mfti::api;
namespace la = mfti::la;
namespace obs = mfti::obs;
namespace serving = mfti::serving;
namespace ss = mfti::ss;

namespace {

ss::DescriptorSystem make_system(std::size_t order, std::size_t ports,
                                 std::uint64_t seed) {
  la::Rng rng(seed);
  ss::RandomSystemOptions opts;
  opts.order = order;
  opts.num_outputs = ports;
  opts.num_inputs = ports;
  opts.rank_d = ports;
  opts.f_min_hz = 10.0;
  opts.f_max_hz = 1e5;
  return ss::random_stable_mimo(opts, rng);
}

serving::ModelSnapshot make_snapshot(std::size_t order, std::size_t ports,
                                     std::uint64_t seed) {
  return std::make_shared<const api::ModelHandle>(
      make_system(order, ports, seed));
}

/// `prefix` + decimal `i` without std::string operator+ chains (GCC 12's
/// -Werror=restrict misfires on those).
std::string tagged(const char* prefix, int i) {
  std::string out(prefix);
  out += std::to_string(i);
  return out;
}

/// Spans of `stage` in a snapshot/trace.
std::vector<obs::Span> spans_of(const std::vector<obs::Span>& spans,
                                obs::Stage stage) {
  std::vector<obs::Span> out;
  for (const obs::Span& span : spans) {
    if (span.stage == stage) out.push_back(span);
  }
  return out;
}

/// Scoped environment override restoring the previous value on exit, so
/// from_env tests cannot leak state into each other.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    const char* previous = std::getenv(name);
    if (previous != nullptr) {
      had_previous_ = true;
      previous_ = previous;
    }
    ::setenv(name, value, 1);
  }
  ~EnvVar() {
    if (had_previous_) {
      ::setenv(name_, previous_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_previous_ = false;
  std::string previous_;
};

}  // namespace

TEST(TraceContext, StageNamesMatchPrometheusLabels) {
  EXPECT_STREQ(obs::stage_name(obs::Stage::Queue), "queue");
  EXPECT_STREQ(obs::stage_name(obs::Stage::Admission), "admission");
  EXPECT_STREQ(obs::stage_name(obs::Stage::Lookup), "lookup");
  EXPECT_STREQ(obs::stage_name(obs::Stage::CacheHit), "cache_hit");
  EXPECT_STREQ(obs::stage_name(obs::Stage::Factorize), "factorize");
  EXPECT_STREQ(obs::stage_name(obs::Stage::Solve), "solve");
  EXPECT_STREQ(obs::stage_name(obs::Stage::CoalesceWait), "coalesce_wait");
}

TEST(TraceContext, RecordsSpansInOrderOnOneTimeline) {
  const auto begin = obs::TraceContext::Clock::now();
  obs::TraceContext context("r1", begin, 16);
  context.record_offset(obs::Stage::Queue, 0.0, 0.5);
  context.record_offset(obs::Stage::Lookup, 0.5, 0.25);
  context.record(obs::Stage::Solve, begin + std::chrono::milliseconds(750),
                 begin + std::chrono::milliseconds(1000));

  const std::vector<obs::Span> spans = context.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].stage, obs::Stage::Queue);
  EXPECT_DOUBLE_EQ(spans[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(spans[0].seconds, 0.5);
  EXPECT_EQ(spans[1].stage, obs::Stage::Lookup);
  EXPECT_DOUBLE_EQ(spans[1].start_seconds, 0.5);
  EXPECT_EQ(spans[2].stage, obs::Stage::Solve);
  EXPECT_NEAR(spans[2].start_seconds, 0.75, 1e-9);
  EXPECT_NEAR(spans[2].seconds, 0.25, 1e-9);
  EXPECT_EQ(context.dropped_spans(), 0u);

  // Offsets clamp at zero for timestamps before the trace began.
  EXPECT_DOUBLE_EQ(context.offset_of(begin - std::chrono::seconds(1)), 0.0);
  EXPECT_NEAR(context.offset_of(begin + std::chrono::milliseconds(100)),
              0.1, 1e-9);
}

TEST(TraceContext, ScopedSpansNestAndNullContextIsANoOp) {
  obs::TraceContext context("r2", obs::TraceContext::Clock::now(), 16);
  {
    obs::TraceContext::Scoped outer(&context, obs::Stage::Lookup);
    {
      obs::TraceContext::Scoped inner(&context, obs::Stage::Solve);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  const std::vector<obs::Span> spans = context.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // The inner scope destructs (and records) first; the outer span must
  // start no later and end no earlier than the inner one.
  EXPECT_EQ(spans[0].stage, obs::Stage::Solve);
  EXPECT_EQ(spans[1].stage, obs::Stage::Lookup);
  EXPECT_LE(spans[1].start_seconds, spans[0].start_seconds);
  EXPECT_GE(spans[1].start_seconds + spans[1].seconds,
            spans[0].start_seconds + spans[0].seconds);
  EXPECT_GE(spans[0].seconds, 0.002);

  // A null context records nothing and must not crash.
  { obs::TraceContext::Scoped noop(nullptr, obs::Stage::Queue); }
  EXPECT_EQ(context.snapshot().size(), 2u);
}

TEST(TraceContext, SpanCapCountsDroppedSpans) {
  obs::TraceContext context("r3", obs::TraceContext::Clock::now(), 4);
  for (int i = 0; i < 10; ++i) {
    context.record_offset(obs::Stage::Solve, static_cast<double>(i), 0.001);
  }
  EXPECT_EQ(context.snapshot().size(), 4u);
  EXPECT_EQ(context.dropped_spans(), 6u);
}

TEST(TraceCollector, DisabledCollectorHandsOutNullContexts) {
  obs::TraceOptions opts;
  opts.enabled = false;
  obs::TraceCollector collector(opts);
  EXPECT_FALSE(collector.enabled());
  EXPECT_EQ(collector.begin("client-id"), nullptr);
  EXPECT_EQ(collector.traces_finished(), 0u);
  EXPECT_TRUE(collector.recent().empty());
}

TEST(TraceCollector, GeneratesUniqueIdsAndTruncatesLongOnes) {
  obs::TraceCollector collector;
  std::set<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    const auto context = collector.begin("");
    ASSERT_NE(context, nullptr);
    EXPECT_EQ(context->id().rfind("req-", 0), 0u);
    ids.insert(context->id());
  }
  EXPECT_EQ(ids.size(), 8u);

  const std::string huge(4096, 'x');
  const auto context = collector.begin(huge);
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->id().size(), 128u);
  EXPECT_EQ(huge.rfind(context->id(), 0), 0u);
}

TEST(TraceCollector, RingEvictsOldestUnderOverflow) {
  obs::TraceOptions opts;
  opts.ring_capacity = 4;
  obs::TraceCollector collector(opts);
  for (int i = 0; i < 10; ++i) {
    const auto context = collector.begin(tagged("t", i));
    collector.finish(context, "eval", 200, 0.001);
  }
  EXPECT_EQ(collector.traces_finished(), 10u);
  const std::vector<obs::Trace> recent = collector.recent();
  ASSERT_EQ(recent.size(), 4u);
  // Newest first; the six oldest were evicted.
  EXPECT_EQ(recent[0].id, "t9");
  EXPECT_EQ(recent[1].id, "t8");
  EXPECT_EQ(recent[2].id, "t7");
  EXPECT_EQ(recent[3].id, "t6");
}

TEST(TraceCollector, SlowTracesSurviveAFloodOfFastOnes) {
  obs::TraceOptions opts;
  opts.ring_capacity = 4;
  opts.slow_ring_capacity = 2;
  opts.slow_threshold_ms = 50.0;
  obs::TraceCollector collector(opts);

  const auto slow = collector.begin("slowpoke");
  slow->record_offset(obs::Stage::Solve, 0.0, 0.075);
  collector.finish(slow, "eval", 200, 0.075);
  for (int i = 0; i < 32; ++i) {
    collector.finish(collector.begin(tagged("fast", i)), "eval", 200,
                     0.001);
  }

  // Gone from the recent ring, retained in the slow ring.
  for (const obs::Trace& trace : collector.recent()) {
    EXPECT_NE(trace.id, "slowpoke");
    EXPECT_FALSE(trace.slow);
  }
  const std::vector<obs::Trace> slow_ring = collector.slow();
  ASSERT_EQ(slow_ring.size(), 1u);
  EXPECT_EQ(slow_ring[0].id, "slowpoke");
  EXPECT_TRUE(slow_ring[0].slow);
  ASSERT_EQ(slow_ring[0].spans.size(), 1u);
  EXPECT_EQ(slow_ring[0].spans[0].stage, obs::Stage::Solve);

  // The slow ring itself is bounded: newest slow traces win.
  for (int i = 0; i < 5; ++i) {
    const auto context = collector.begin(tagged("slow", i));
    collector.finish(context, "eval", 200, 0.2);
  }
  const std::vector<obs::Trace> bounded = collector.slow();
  ASSERT_EQ(bounded.size(), 2u);
  EXPECT_EQ(bounded[0].id, "slow4");
  EXPECT_EQ(bounded[1].id, "slow3");
}

TEST(TraceCollector, StageHistogramsBucketObservations) {
  obs::TraceCollector collector;
  collector.observe_stage(obs::Stage::Solve, 5e-5);   // bucket 0 (<= 1e-4)
  collector.observe_stage(obs::Stage::Solve, 2e-3);   // bucket 3 (<= 3e-3)
  collector.observe_stage(obs::Stage::Solve, 100.0);  // +Inf bucket
  collector.observe_stage(obs::Stage::Queue, 2e-4);   // bucket 1 (<= 3e-4)

  const obs::StageSnapshot snapshot = collector.stage_snapshot();
  const auto& solve =
      snapshot.stages[static_cast<std::size_t>(obs::Stage::Solve)];
  EXPECT_EQ(solve.observations, 3u);
  EXPECT_NEAR(solve.sum_seconds, 100.002 + 5e-5, 1e-12);
  EXPECT_EQ(solve.buckets[0], 1u);
  EXPECT_EQ(solve.buckets[3], 1u);
  EXPECT_EQ(solve.buckets[obs::kStageBucketsSeconds.size()], 1u);
  const auto& queue =
      snapshot.stages[static_cast<std::size_t>(obs::Stage::Queue)];
  EXPECT_EQ(queue.observations, 1u);
  EXPECT_EQ(queue.buckets[1], 1u);

  // finish() feeds the histograms from the trace's spans.
  const auto context = collector.begin("histo");
  context->record_offset(obs::Stage::Factorize, 0.0, 2e-2);
  collector.finish(context, "eval", 200, 2e-2);
  const obs::StageSnapshot after = collector.stage_snapshot();
  const auto& factorize =
      after.stages[static_cast<std::size_t>(obs::Stage::Factorize)];
  EXPECT_EQ(factorize.observations, 1u);
  EXPECT_EQ(factorize.buckets[5], 1u);  // 2e-2 lands in the 3e-2 bucket
}

TEST(TraceOptions, FromEnvReadsKnobsAndIgnoresMalformedValues) {
  {
    EnvVar enabled("MFTI_TRACE", "0");
    EnvVar ring("MFTI_TRACE_RING", "7");
    EnvVar slow("MFTI_TRACE_SLOW_MS", "12.5");
    EnvVar spans("MFTI_TRACE_MAX_SPANS", "33");
    const obs::TraceOptions opts = obs::TraceOptions::from_env();
    EXPECT_FALSE(opts.enabled);
    EXPECT_EQ(opts.ring_capacity, 7u);
    EXPECT_DOUBLE_EQ(opts.slow_threshold_ms, 12.5);
    EXPECT_EQ(opts.max_spans, 33u);
  }
  {
    EnvVar ring("MFTI_TRACE_RING", "banana");
    EnvVar slow("MFTI_TRACE_SLOW_MS", "-3");
    const obs::TraceOptions defaults;
    const obs::TraceOptions opts = obs::TraceOptions::from_env();
    EXPECT_EQ(opts.ring_capacity, defaults.ring_capacity);
    EXPECT_DOUBLE_EQ(opts.slow_threshold_ms, defaults.slow_threshold_ms);
  }
}

// --- engine integration ------------------------------------------------------

TEST(ServingEngineTracing, ColdEvalRecordsLookupFactorizeSolve) {
  serving::ModelRegistry registry;
  registry.publish("m", make_snapshot(16, 2, 71));
  serving::ServingEngine engine(registry, {.workers = 2});
  obs::TraceCollector collector;

  const std::vector<la::Complex> points = {la::Complex(0.0, 100.0),
                                           la::Complex(0.0, 200.0)};
  const auto cold = collector.begin("cold");
  serving::EvalRequest request("m", points);
  request.trace = cold;
  const auto response = engine.evaluate(request);
  ASSERT_TRUE(response) << response.status().to_string();

  const std::vector<obs::Span> spans = cold->snapshot();
  EXPECT_EQ(spans_of(spans, obs::Stage::Lookup).size(), 1u);
  EXPECT_EQ(spans_of(spans, obs::Stage::Factorize).size(), points.size());
  EXPECT_EQ(spans_of(spans, obs::Stage::Solve).size(), points.size());
  EXPECT_TRUE(spans_of(spans, obs::Stage::CacheHit).empty());
  // Each solve tiles directly after its factorization on the timeline.
  for (const obs::Span& factor : spans_of(spans, obs::Stage::Factorize)) {
    bool adjacent = false;
    for (const obs::Span& solve : spans_of(spans, obs::Stage::Solve)) {
      if (std::abs(solve.start_seconds -
                   (factor.start_seconds + factor.seconds)) < 1e-12) {
        adjacent = true;
      }
    }
    EXPECT_TRUE(adjacent);
  }

  // The same points again: the pencil cache answers, so the trace carries
  // cache_hit spans and no factorization.
  const auto warm = collector.begin("warm");
  serving::EvalRequest repeat("m", points);
  repeat.trace = warm;
  ASSERT_TRUE(engine.evaluate(repeat));
  const std::vector<obs::Span> warm_spans = warm->snapshot();
  EXPECT_EQ(spans_of(warm_spans, obs::Stage::CacheHit).size(),
            points.size());
  EXPECT_TRUE(spans_of(warm_spans, obs::Stage::Factorize).empty());
  EXPECT_EQ(spans_of(warm_spans, obs::Stage::Solve).size(), points.size());
}

TEST(ServingEngineTracing, UntracedRequestsStillEvaluate) {
  serving::ModelRegistry registry;
  registry.publish("m", make_snapshot(12, 2, 72));
  serving::ServingEngine engine(registry, {.workers = 2});
  const auto response =
      engine.evaluate({"m", {la::Complex(0.0, 100.0)}});
  ASSERT_TRUE(response) << response.status().to_string();
  EXPECT_EQ(response->values.size(), 1u);
}

// A coalescing follower must record the wait it spends joining the
// leader's in-flight factorization. Same deterministic interleaving as
// ServingEngine.CoalescesIdenticalInFlightWorkAcrossBatches: the cache
// budget hook stalls the leader mid-insert, the follower provably
// coalesces, then the leader is released.
TEST(ServingEngineTracing, CoalescingFollowerRecordsItsWait) {
  serving::ModelRegistry registry;
  registry.publish("m", make_snapshot(12, 2, 73));
  serving::ServingEngine engine(registry, {.workers = 2});
  const auto handle = registry.lookup("m");
  const la::Complex s(0.0, 500.0);
  obs::TraceCollector collector;

  std::atomic<bool> first_insert{true};
  std::promise<void> entered;
  std::promise<void> release;
  auto release_future = release.get_future().share();
  handle->set_cache_budget_hook([&]() -> std::size_t {
    if (first_insert.exchange(false)) {
      entered.set_value();
      release_future.wait();
    }
    return std::numeric_limits<std::size_t>::max();
  });

  std::thread leader([&] {
    const auto response = engine.evaluate({"m", {s}});
    ASSERT_TRUE(response) << response.status().to_string();
  });
  entered.get_future().wait();  // leader stalled mid-insert, cell claimed

  const auto trace = collector.begin("follower");
  std::thread follower([&] {
    serving::EvalRequest request("m", {s});
    request.trace = trace;
    const auto response = engine.evaluate(request);
    ASSERT_TRUE(response) << response.status().to_string();
  });
  while (engine.coalesced_total() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release.set_value();
  leader.join();
  follower.join();
  handle->set_cache_budget_hook({});

  const std::vector<obs::Span> spans = trace->snapshot();
  const auto waits = spans_of(spans, obs::Stage::CoalesceWait);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_GT(waits[0].seconds, 0.0);
  // The follower did no factorization of its own.
  EXPECT_TRUE(spans_of(spans, obs::Stage::Factorize).empty());
  EXPECT_TRUE(spans_of(spans, obs::Stage::CacheHit).empty());
}

// --- concurrency (TSan coverage) --------------------------------------------

// Pool workers of one request record into one shared context while other
// requests finish and readers scrape the rings + histograms. Run under
// TSan this exercises every lock/atomic in the subsystem.
TEST(TraceCollector, ConcurrentRecordingFinishingAndScrapingIsSafe) {
  obs::TraceOptions opts;
  opts.ring_capacity = 16;
  opts.slow_threshold_ms = 0.5;
  obs::TraceCollector collector(opts);

  constexpr int kRecorders = 4;
  constexpr int kFinishers = 4;
  constexpr int kSpansPerRecorder = 200;
  constexpr int kTracesPerFinisher = 100;
  const auto shared = collector.begin("shared");

  std::vector<std::thread> threads;
  for (int t = 0; t < kRecorders; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kSpansPerRecorder; ++i) {
        shared->record_offset(
            t % 2 == 0 ? obs::Stage::Solve : obs::Stage::Factorize,
            static_cast<double>(i) * 1e-4, 1e-4);
      }
    });
  }
  for (int t = 0; t < kFinishers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTracesPerFinisher; ++i) {
        std::string id = tagged("f", t);
        id += '-';
        id += std::to_string(i);
        const auto context = collector.begin(id);
        context->record_offset(obs::Stage::Queue, 0.0, 1e-5);
        collector.finish(context, "eval", 200, i % 10 == 0 ? 0.01 : 1e-4);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)collector.recent();
      (void)collector.slow();
      (void)collector.stage_snapshot();
      (void)shared->snapshot();
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  reader.join();
  collector.finish(shared, "eval", 200, 0.05);

  EXPECT_EQ(collector.traces_finished(),
            1u + kFinishers * kTracesPerFinisher);
  const obs::StageSnapshot snapshot = collector.stage_snapshot();
  std::uint64_t queue_count =
      snapshot.stages[static_cast<std::size_t>(obs::Stage::Queue)]
          .observations;
  EXPECT_EQ(queue_count,
            static_cast<std::uint64_t>(kFinishers * kTracesPerFinisher));
  // Default max_spans (512) capped the shared context below the 800
  // recorded spans; stored + dropped must account for every record call.
  EXPECT_EQ(shared->snapshot().size() + shared->dropped_spans(),
            static_cast<std::size_t>(kRecorders * kSpansPerRecorder));
}
