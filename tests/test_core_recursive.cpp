// Tests for the incremental Loewner accumulator and the recursive MFTI
// (Algorithm 2).

#include <gtest/gtest.h>

#include "core/incremental.hpp"
#include "core/recursive_mfti.hpp"
#include "linalg/norms.hpp"
#include "loewner/matrices.hpp"
#include "metrics/error.hpp"
#include "sampling/grid.hpp"
#include "sampling/noise.hpp"
#include "sampling/sampler.hpp"
#include "statespace/random_system.hpp"

namespace la = mfti::la;
namespace ss = mfti::ss;
namespace sp = mfti::sampling;
namespace lw = mfti::loewner;
namespace core = mfti::core;

namespace {

ss::DescriptorSystem make_system(std::size_t order, std::size_t ports,
                                 std::size_t rank_d, std::uint64_t seed) {
  la::Rng rng(seed);
  ss::RandomSystemOptions opts;
  opts.order = order;
  opts.num_outputs = ports;
  opts.num_inputs = ports;
  opts.rank_d = rank_d;
  return ss::random_stable_mimo(opts, rng);
}

sp::SampleSet sample(const ss::DescriptorSystem& sys, std::size_t k) {
  return sp::sample_system(sys, sp::log_grid(10.0, 1e5, k));
}

}  // namespace

TEST(IncrementalLoewner, MatchesBatchConstructionInOrder) {
  const auto sys = make_system(8, 2, 1, 301);
  const auto data = sample(sys, 8);
  const lw::TangentialData full = lw::build_tangential_data(data, {});
  core::IncrementalLoewner inc(full);
  ASSERT_EQ(inc.num_units(), 4u);
  for (std::size_t u = 0; u < 4; ++u) inc.add_unit(u);
  // Adding every unit in order reproduces the full data set exactly.
  const auto [ll, sll] = lw::loewner_pair(full);
  EXPECT_TRUE(la::approx_equal(inc.loewner(), ll, 1e-12, 1e-12));
  EXPECT_TRUE(la::approx_equal(inc.shifted(), sll, 1e-12, 1e-12));
}

TEST(IncrementalLoewner, EachEntryComputedExactlyOnce) {
  const auto sys = make_system(8, 3, 0, 302);
  const auto data = sample(sys, 8);
  const lw::TangentialData full = lw::build_tangential_data(data, {});
  core::IncrementalLoewner inc(full);
  for (std::size_t u = 0; u < inc.num_units(); ++u) inc.add_unit(u);
  const std::size_t k = full.left_height();
  EXPECT_EQ(inc.entries_computed(), k * full.right_width());
  EXPECT_EQ(inc.loewner().rows(), k);
}

TEST(IncrementalLoewner, SubsetMatchesDirectSubsetBuild) {
  const auto sys = make_system(8, 2, 0, 303);
  const auto data = sample(sys, 12);
  const lw::TangentialData full = lw::build_tangential_data(data, {});
  core::IncrementalLoewner inc(full);
  inc.add_unit(4);
  inc.add_unit(1);
  // The accumulated pencil must equal loewner_pair of the accumulated data.
  const auto [ll, sll] = lw::loewner_pair(inc.data());
  EXPECT_TRUE(la::approx_equal(inc.loewner(), ll, 1e-12, 1e-12));
  EXPECT_TRUE(la::approx_equal(inc.shifted(), sll, 1e-12, 1e-12));
}

TEST(IncrementalLoewner, RejectsDuplicatesAndOutOfRange) {
  const auto sys = make_system(6, 2, 0, 304);
  const auto data = sample(sys, 8);
  const lw::TangentialData full = lw::build_tangential_data(data, {});
  core::IncrementalLoewner inc(full);
  inc.add_unit(0);
  EXPECT_THROW(inc.add_unit(0), std::invalid_argument);
  EXPECT_THROW(inc.add_unit(99), std::invalid_argument);
}

TEST(IncrementalLoewner, BatchAddMatchesSequentialExactly) {
  const auto sys = make_system(8, 2, 1, 306);
  const auto data = sample(sys, 12);
  const lw::TangentialData full = lw::build_tangential_data(data, {});

  core::IncrementalLoewner seq(full);
  seq.add_unit(2);
  seq.add_unit(0);
  seq.add_unit(5);

  core::IncrementalLoewner batch(full);
  batch.add_units({2, 0, 5});

  // Bitwise: each entry is computed by the same formula in both modes.
  EXPECT_TRUE(batch.loewner() == seq.loewner());
  EXPECT_TRUE(batch.shifted() == seq.shifted());
  EXPECT_EQ(batch.units(), seq.units());
  EXPECT_EQ(batch.entries_computed(), seq.entries_computed());

  // A second batch on top of an existing subset extends both bands.
  seq.add_unit(1);
  seq.add_unit(4);
  batch.add_units({1, 4});
  EXPECT_TRUE(batch.loewner() == seq.loewner());
  EXPECT_TRUE(batch.shifted() == seq.shifted());
  EXPECT_EQ(batch.entries_computed(), seq.entries_computed());
}

TEST(IncrementalLoewner, BatchAddParallelMatchesSerialExactly) {
  const auto sys = make_system(10, 3, 0, 307);
  const auto data = sample(sys, 14);
  const lw::TangentialData full = lw::build_tangential_data(data, {});

  core::IncrementalLoewner serial(full);
  serial.add_units({0, 3, 1, 6});
  core::IncrementalLoewner parallel(full);
  parallel.add_units({0, 3, 1, 6},
                     mfti::parallel::ExecutionPolicy::with_threads(4));
  EXPECT_TRUE(parallel.loewner() == serial.loewner());
  EXPECT_TRUE(parallel.shifted() == serial.shifted());
  EXPECT_EQ(parallel.entries_computed(), serial.entries_computed());
}

TEST(IncrementalLoewner, BatchAddRejectsBadUnitsWithoutMutating) {
  const auto sys = make_system(6, 2, 0, 308);
  const auto data = sample(sys, 8);
  const lw::TangentialData full = lw::build_tangential_data(data, {});
  core::IncrementalLoewner inc(full);
  inc.add_unit(1);
  const std::size_t before = inc.entries_computed();
  // Out of range, already added, and in-batch duplicate all throw and
  // leave the accumulator untouched.
  EXPECT_THROW(inc.add_units({0, 99}), std::invalid_argument);
  EXPECT_THROW(inc.add_units({0, 1}), std::invalid_argument);
  EXPECT_THROW(inc.add_units({2, 2}), std::invalid_argument);
  EXPECT_EQ(inc.entries_computed(), before);
  EXPECT_EQ(inc.units().size(), 1u);
  inc.add_units({});  // empty batch is a no-op
  EXPECT_EQ(inc.units().size(), 1u);
}

TEST(RecursiveMfti, ConvergesOnCleanData) {
  const auto sys = make_system(12, 3, 2, 305);
  const auto data = sample(sys, 20);
  core::RecursiveMftiOptions opts;
  opts.threshold = 1e-6;
  opts.units_per_iteration = 2;
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(mfti::metrics::model_error(res.model, data), 1e-5);
  // Should not have needed every unit: the system has low order.
  EXPECT_LT(res.used_units.size(), 10u);
}

TEST(RecursiveMfti, ImpossibleThresholdConsumesAllData) {
  const auto sys = make_system(8, 2, 1, 306);
  const auto data = sample(sys, 12);
  core::RecursiveMftiOptions opts;
  opts.threshold = 0.0;  // unreachable with noise-free finite precision? no:
                         // clean data can hit exactly ~1e-12, so use -1.
  opts.threshold = -1.0;
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.used_units.size(), 6u);  // all units consumed
  EXPECT_LT(mfti::metrics::model_error(res.model, data), 1e-6);
}

TEST(RecursiveMfti, HistoryIsRecorded) {
  const auto sys = make_system(10, 2, 0, 307);
  const auto data = sample(sys, 16);
  core::RecursiveMftiOptions opts;
  opts.threshold = -1.0;
  opts.units_per_iteration = 2;
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  EXPECT_EQ(res.iterations, 4u);  // 8 units / 2 per iteration
  // One history entry per iteration that still had remaining units.
  EXPECT_EQ(res.mean_error_history.size(), 3u);
}

TEST(RecursiveMfti, MaxIterationsRespected) {
  const auto sys = make_system(10, 2, 0, 308);
  const auto data = sample(sys, 20);
  core::RecursiveMftiOptions opts;
  opts.threshold = -1.0;
  opts.units_per_iteration = 1;
  opts.max_iterations = 3;
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  EXPECT_EQ(res.iterations, 3u);
  EXPECT_EQ(res.used_units.size(), 3u);
}

TEST(RecursiveMfti, WorstFirstAlsoConverges) {
  const auto sys = make_system(12, 3, 0, 309);
  const auto data = sample(sys, 20);
  core::RecursiveMftiOptions opts;
  opts.threshold = 1e-6;
  opts.selection = core::SelectionRule::WorstFirst;
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(mfti::metrics::model_error(res.model, data), 1e-5);
}

TEST(RecursiveMfti, NoisyDataStopsEarlyWithSubset) {
  // On noisy data the held-out tangential error decays as units are added;
  // a threshold above the generalization floor stops the loop before all
  // data is consumed, keeping the model size moderate (the MFTI-2 selling
  // point of Table 1).
  const auto sys = make_system(12, 3, 2, 310);
  la::Rng noise_rng(55);
  const auto data = sp::add_noise(sample(sys, 24), 1e-3, noise_rng);
  core::RecursiveMftiOptions opts;
  opts.threshold = 0.12;  // absolute, in units of the sampled S entries
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.used_units.size(), 12u);  // did not need every unit
  // Held-out mean error decreased substantially from the first iteration.
  ASSERT_GE(res.mean_error_history.size(), 2u);
  EXPECT_LT(res.mean_error_history.back(),
            0.5 * res.mean_error_history.front());
  EXPECT_LT(mfti::metrics::model_error(res.model, data), 0.5);
}

TEST(RecursiveMfti, InvalidOptionsThrow) {
  const auto sys = make_system(6, 2, 0, 311);
  const auto data = sample(sys, 8);
  core::RecursiveMftiOptions opts;
  opts.units_per_iteration = 0;
  EXPECT_THROW(core::recursive_mfti_fit(data, opts), std::invalid_argument);
  EXPECT_THROW(core::recursive_mfti_fit(data.prefix(2), {}),
               std::invalid_argument);
}
