// Tests for the persistence layer (src/io/snapshot + src/serving journal):
// CRC/framing primitives, bitwise system/model snapshot round trips,
// corrupt-file reporting, durable-registry rehydration (names, versions,
// metadata, rollback history byte-identical after reopen), torn-journal
// recovery (truncate-and-warn, never crash), crash-safe compaction
// (sequence-number replay idempotence), lock-free reads during a stalled
// write-ahead append, and the Touchstone fit -> export -> re-read -> refit
// loop.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <iterator>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "io/fault_injector.hpp"
#include "io/snapshot.hpp"
#include "io/touchstone.hpp"
#include "metrics/error.hpp"
#include "sampling/grid.hpp"
#include "sampling/sampler.hpp"
#include "serving/serving.hpp"
#include "statespace/random_system.hpp"

namespace api = mfti::api;
namespace fs = std::filesystem;
namespace io = mfti::io;
namespace la = mfti::la;
namespace metrics = mfti::metrics;
namespace serving = mfti::serving;
namespace sp = mfti::sampling;
namespace ss = mfti::ss;

namespace {

/// Fresh scratch directory, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("mfti_persist_" + tag + "_" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

ss::DescriptorSystem make_system(std::size_t order, std::size_t ports,
                                 std::uint64_t seed) {
  la::Rng rng(seed);
  ss::RandomSystemOptions opts;
  opts.order = order;
  opts.num_outputs = ports;
  opts.num_inputs = ports;
  opts.rank_d = ports;
  opts.f_min_hz = 10.0;
  opts.f_max_hz = 1e5;
  return ss::random_stable_mimo(opts, rng);
}

serving::ModelSnapshot make_snapshot(std::size_t order, std::size_t ports,
                                     std::uint64_t seed,
                                     api::ModelHandleOptions opts = {}) {
  return std::make_shared<const api::ModelHandle>(
      make_system(order, ports, seed), opts);
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The byte-identity oracle: every fact the registry exposes must survive
/// a save/reopen cycle exactly, matrices bitwise.
void expect_states_identical(
    const std::vector<serving::ModelRegistry::EntryState>& before,
    const std::vector<serving::ModelRegistry::EntryState>& after) {
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t e = 0; e < before.size(); ++e) {
    SCOPED_TRACE("entry " + before[e].name);
    EXPECT_EQ(before[e].name, after[e].name);
    EXPECT_EQ(before[e].next_version, after[e].next_version);
    ASSERT_EQ(before[e].versions.size(), after[e].versions.size());
    for (std::size_t v = 0; v < before[e].versions.size(); ++v) {
      SCOPED_TRACE("version index " + std::to_string(v));
      const serving::ModelInfo& a = before[e].versions[v].info;
      const serving::ModelInfo& b = after[e].versions[v].info;
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.version, b.version);
      EXPECT_EQ(a.order, b.order);
      EXPECT_EQ(a.num_inputs, b.num_inputs);
      EXPECT_EQ(a.num_outputs, b.num_outputs);
      EXPECT_EQ(a.algorithm, b.algorithm);
      EXPECT_EQ(a.fit_seconds, b.fit_seconds);
      EXPECT_EQ(a.published_at, b.published_at);  // i64 ns round trip
      EXPECT_EQ(a.history_depth, b.history_depth);
      const api::ModelHandle& ha = *before[e].versions[v].handle;
      const api::ModelHandle& hb = *after[e].versions[v].handle;
      EXPECT_EQ(ha.options().cache_capacity, hb.options().cache_capacity);
      EXPECT_TRUE(ha.model() == hb.model());  // bitwise matrix equality
    }
  }
}

/// Thresholds that never auto-compact: the whole history stays in the
/// journal, which is what the torn-tail tests need to manipulate.
serving::RegistryPersistenceOptions no_compaction() {
  serving::RegistryPersistenceOptions persist;
  persist.compact_min_records = 1u << 20;
  persist.compact_min_bytes = 0;
  return persist;
}

}  // namespace

// --- primitives -------------------------------------------------------------

TEST(SnapshotPrimitives, Crc32KnownAnswer) {
  // The canonical CRC-32 check value (IEEE 802.3).
  EXPECT_EQ(io::crc32("123456789", 9), 0xCBF43926u);
  // Seeded continuation must match the one-shot checksum.
  const std::uint32_t head = io::crc32("12345", 5);
  EXPECT_EQ(io::crc32("6789", 4, head), 0xCBF43926u);
}

TEST(SnapshotPrimitives, WriterReaderRoundTrip) {
  io::ByteWriter out;
  out.u8(0xAB);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i64(-42);
  out.f64(-0.0);
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.str("registry");
  io::ByteReader in(out.bytes());
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i64(), -42);
  const double neg_zero = in.f64();
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not value
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_EQ(in.str(), "registry");
  EXPECT_TRUE(in.at_end());
  EXPECT_NO_THROW(in.expect_end());
  EXPECT_THROW(in.u8(), io::SnapshotFormatError);  // past the end
}

TEST(SnapshotPrimitives, SectionFramingDetectsTornAndCorrupt) {
  std::string file;
  io::append_section(file, io::kSectionSystem, "payload bytes");
  // Intact: parses and advances.
  std::size_t offset = 0;
  io::SectionView view;
  ASSERT_EQ(io::parse_section(file, &offset, &view), io::SectionParse::Ok);
  EXPECT_EQ(view.tag, io::kSectionSystem);
  EXPECT_EQ(view.payload, "payload bytes");
  EXPECT_EQ(offset, file.size());
  // Torn: any prefix shorter than the full section, offset untouched.
  offset = 0;
  const std::string torn = file.substr(0, file.size() - 3);
  EXPECT_EQ(io::parse_section(torn, &offset, &view),
            io::SectionParse::Truncated);
  EXPECT_EQ(offset, 0u);
  // Corrupt: one payload byte flipped fails the checksum.
  std::string corrupt = file;
  corrupt[14] ^= 0x01;
  offset = 0;
  EXPECT_EQ(io::parse_section(corrupt, &offset, &view),
            io::SectionParse::BadCrc);
  EXPECT_EQ(offset, 0u);
}

// --- model snapshots --------------------------------------------------------

TEST(ModelSnapshot, SystemRoundTripsBitwise) {
  TempDir dir("system");
  const ss::DescriptorSystem sys = make_system(8, 2, 11);
  const std::string path = (dir.path() / "sys.mfti").string();
  ASSERT_TRUE(io::save_system_snapshot(path, sys).is_ok());
  const auto back = io::load_system_snapshot(path);
  ASSERT_TRUE(back) << back.status().to_string();
  EXPECT_TRUE(*back == sys);
}

TEST(ModelSnapshot, HandleRoundTripServesIdentically) {
  TempDir dir("handle");
  api::ModelHandleOptions opts;
  opts.cache_capacity = 7;
  const api::ModelHandle handle(make_system(10, 2, 12), opts);
  const std::string path = (dir.path() / "model.mfti").string();
  ASSERT_TRUE(io::save_model_snapshot(path, handle).is_ok());
  const auto back = io::load_model_snapshot(path);
  ASSERT_TRUE(back) << back.status().to_string();
  EXPECT_EQ((*back)->options().cache_capacity, 7u);
  EXPECT_TRUE((*back)->model() == handle.model());
  // A reloaded model must serve answers bitwise identical to the saved
  // one — same matrices, same evaluation path.
  for (const double f : sp::log_grid(10.0, 1e5, 9)) {
    const la::CMat a = handle.response_at(f);
    const la::CMat b = (*back)->response_at(f);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < a.cols(); ++j) {
        EXPECT_EQ(a(i, j), b(i, j));
      }
    }
  }
}

TEST(ModelSnapshot, CorruptFileIsAnErrorNotACrash) {
  TempDir dir("corrupt");
  const std::string path = (dir.path() / "sys.mfti").string();
  ASSERT_TRUE(
      io::save_system_snapshot(path, make_system(6, 2, 13)).is_ok());
  std::string bytes = read_bytes(path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit
  write_bytes(path, bytes);
  const auto back = io::load_system_snapshot(path);
  ASSERT_FALSE(back);
  EXPECT_EQ(back.status().code(), api::StatusCode::Internal);
}

TEST(ModelSnapshot, NewerFormatVersionIsRejected) {
  TempDir dir("version");
  const std::string path = (dir.path() / "sys.mfti").string();
  ASSERT_TRUE(
      io::save_system_snapshot(path, make_system(6, 2, 14)).is_ok());
  std::string bytes = read_bytes(path);
  bytes[8] = static_cast<char>(io::kSnapshotFormatVersion + 1);  // LE u32
  write_bytes(path, bytes);
  const auto back = io::load_system_snapshot(path);
  ASSERT_FALSE(back);
  EXPECT_EQ(back.status().code(), api::StatusCode::InvalidArgument);
}

// --- durable registry -------------------------------------------------------

TEST(DurableRegistry, ReopenRestoresStateByteIdentically) {
  TempDir dir("reopen");
  std::vector<serving::ModelRegistry::EntryState> before;
  {
    serving::ModelRegistryOptions opts;
    opts.max_versions = 3;
    auto registry =
        serving::ModelRegistry::open(dir.str(), opts, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    serving::ModelRegistry& reg = **registry;
    EXPECT_TRUE(reg.durable());
    // A history that exercises every journal op: multiple versions,
    // a trim past max_versions, a rollback, and a removed model.
    api::ModelHandleOptions handle_opts;
    handle_opts.cache_capacity = 17;
    reg.publish("pdn", make_snapshot(8, 2, 21, handle_opts),
                api::Algorithm::Mfti, 0.25);
    reg.publish("pdn", make_snapshot(10, 2, 22), api::Algorithm::Vfti,
                1.5);
    reg.publish("pdn", make_snapshot(12, 2, 23),
                api::Algorithm::RecursiveMfti, 2.75);
    reg.publish("pdn", make_snapshot(6, 2, 24));  // trims v1 out
    ASSERT_TRUE(reg.rollback("pdn"));             // v3 live again
    reg.publish("pkg", make_snapshot(4, 2, 25));
    reg.publish("doomed", make_snapshot(4, 2, 26));
    EXPECT_TRUE(reg.remove("doomed"));
    before = reg.export_state();
  }  // "crash": the process state is gone, only the files remain
  serving::ModelRegistryOptions opts;
  opts.max_versions = 3;
  auto reopened =
      serving::ModelRegistry::open(dir.str(), opts, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(before, (*reopened)->export_state());
  // And the rehydrated fleet keeps serving: the mutations continue the
  // version sequence instead of restarting it.
  EXPECT_EQ((*reopened)->publish("pdn", make_snapshot(8, 2, 27)), 5u);
}

TEST(DurableRegistry, TornFinalRecordIsTruncatedNotFatal) {
  TempDir dir("torn");
  std::vector<serving::ModelRegistry::EntryState> before_torn;
  {
    auto registry =
        serving::ModelRegistry::open(dir.str(), {}, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(8, 2, 31));
    (*registry)->publish("pkg", make_snapshot(6, 2, 32));
    before_torn = (*registry)->export_state();
    // The record torn by the "crash":
    (*registry)->publish("torn", make_snapshot(4, 2, 33));
  }
  // Chop the tail off the final record — a crash mid-append.
  const fs::path journal = dir.path() / "registry.journal";
  std::string bytes = read_bytes(journal);
  write_bytes(journal, bytes.substr(0, bytes.size() - 25));
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  // The incomplete publish is gone; everything flushed before it survives.
  expect_states_identical(before_torn, (*reopened)->export_state());
  EXPECT_EQ((*reopened)->lookup("torn"), nullptr);
  // The file was truncated back to the last complete record, so a second
  // reopen sees a clean journal.
  auto again =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(again) << again.status().to_string();
  expect_states_identical(before_torn, (*again)->export_state());
}

TEST(DurableRegistry, MidJournalCorruptionIsAnError) {
  TempDir dir("midcorrupt");
  {
    auto registry =
        serving::ModelRegistry::open(dir.str(), {}, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(8, 2, 41));
    (*registry)->publish("pkg", make_snapshot(6, 2, 42));
  }
  // Flip a bit inside the FIRST record: complete records follow, so this
  // is real corruption, not a torn write — recovery must refuse.
  const fs::path journal = dir.path() / "registry.journal";
  std::string bytes = read_bytes(journal);
  bytes[40] ^= 0x01;
  write_bytes(journal, bytes);
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_FALSE(reopened);
  EXPECT_EQ(reopened.status().code(), api::StatusCode::Internal);
}

TEST(DurableRegistry, CompactionPreservesStateAndResetsJournal) {
  TempDir dir("compact");
  std::vector<serving::ModelRegistry::EntryState> before;
  {
    auto registry =
        serving::ModelRegistry::open(dir.str(), {}, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(8, 2, 51));
    (*registry)->publish("pdn", make_snapshot(10, 2, 52));
    (*registry)->publish("pkg", make_snapshot(6, 2, 53));
    ASSERT_TRUE((*registry)->compact().is_ok());
    before = (*registry)->export_state();
  }
  // After compaction the journal is a bare 12-byte header; the snapshot
  // alone carries the fleet.
  EXPECT_EQ(fs::file_size(dir.path() / "registry.journal"), 12u);
  EXPECT_TRUE(fs::exists(dir.path() / "registry.snapshot"));
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(before, (*reopened)->export_state());
}

TEST(DurableRegistry, ReplaySkipsRecordsAlreadyInSnapshot) {
  // A crash *between* compaction's two steps (snapshot written, journal
  // not yet reset) leaves records in the journal that the snapshot
  // already captured. Sequence numbers make the replay idempotent.
  TempDir dir("crashsafe");
  std::vector<serving::ModelRegistry::EntryState> before;
  const fs::path journal = dir.path() / "registry.journal";
  std::string stale_journal;
  {
    auto registry =
        serving::ModelRegistry::open(dir.str(), {}, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(8, 2, 61));
    (*registry)->publish("pkg", make_snapshot(6, 2, 62));
    stale_journal = read_bytes(journal);  // both records, seq 1 and 2
    ASSERT_TRUE((*registry)->compact().is_ok());
    before = (*registry)->export_state();
  }
  write_bytes(journal, stale_journal);  // "the reset never happened"
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  // No double-applied publishes: versions and history are unchanged.
  expect_states_identical(before, (*reopened)->export_state());
  EXPECT_EQ((*reopened)->publish("pdn", make_snapshot(8, 2, 63)), 2u);
}

TEST(DurableRegistry, FormatVersion1FilesStillOpen) {
  // Backward compatibility pin for the version-1 -> version-2 bump
  // (version 2 added the registry quarantine block and the JQUA/JPRO/
  // JDSC journal records; see docs/persistence-format.md). A version-1
  // file pair is synthesized by downgrading freshly written files: the
  // v2 additions are purely trailing for a quarantine-free fleet, so
  // stripping the empty quarantine block and re-stamping the headers
  // reproduces the v1 bytes exactly.
  TempDir dir("v1compat");
  std::vector<serving::ModelRegistry::EntryState> before;
  {
    auto registry =
        serving::ModelRegistry::open(dir.str(), {}, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(8, 2, 71));
    (*registry)->publish("pdn", make_snapshot(8, 2, 72));
    (*registry)->publish("pkg", make_snapshot(6, 2, 73));
    ASSERT_TRUE((*registry)->compact().is_ok());
    // One post-compaction mutation so the journal holds a JPUB record
    // (its encoding is unchanged between the versions).
    (*registry)->publish("pkg", make_snapshot(6, 2, 74));
    before = (*registry)->export_state();
  }

  // Downgrade the snapshot: drop the trailing `u64 quarantine_count`
  // (zero — no quarantine) from the REGY payload and re-frame.
  const fs::path snap_path = dir.path() / "registry.snapshot";
  const std::string snap = read_bytes(snap_path);
  ASSERT_GE(snap.size(), 12u + 12u + 8u + 4u);
  io::ByteReader frame(std::string_view(snap).substr(16, 8));
  const std::uint64_t payload_len = frame.u64();
  const std::string payload = snap.substr(24, payload_len);
  ASSERT_EQ(payload.substr(payload.size() - 8),
            std::string(8, '\0'));  // empty quarantine block
  std::string v1;
  io::append_file_header(v1, io::kSnapshotMagic, 1);
  io::append_section(
      v1, io::fourcc('R', 'E', 'G', 'Y'),
      std::string_view(payload).substr(0, payload.size() - 8));
  write_bytes(snap_path, v1);

  // Downgrade the journal: only the header version differs for a
  // journal holding pre-v2 record types.
  const fs::path journal_path = dir.path() / "registry.journal";
  std::string journal = read_bytes(journal_path);
  ASSERT_GE(journal.size(), 12u);
  journal[8] = '\x01';  // LE u32 version field: 2 -> 1
  write_bytes(journal_path, journal);

  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(before, (*reopened)->export_state());
  EXPECT_TRUE((*reopened)->quarantined().empty());
  // The reopened registry writes version-2 files from here on.
  ASSERT_TRUE((*reopened)->compact().is_ok());
  EXPECT_EQ(read_bytes(snap_path)[8], '\x02');
}

TEST(DurableRegistry, AutoCompactionAtRecordThreshold) {
  TempDir dir("autocompact");
  serving::RegistryPersistenceOptions persist;
  persist.compact_min_records = 1;  // compact after every mutation
  persist.compact_min_bytes = 0;
  std::vector<serving::ModelRegistry::EntryState> before;
  {
    auto registry = serving::ModelRegistry::open(dir.str(), {}, persist);
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(8, 2, 71));
    (*registry)->publish("pdn", make_snapshot(10, 2, 72));
    ASSERT_TRUE((*registry)->rollback("pdn"));
    before = (*registry)->export_state();
    // Every mutation triggered a compaction, so the journal never grows.
    EXPECT_EQ(fs::file_size(dir.path() / "registry.journal"), 12u);
  }
  auto reopened = serving::ModelRegistry::open(dir.str(), {}, persist);
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(before, (*reopened)->export_state());
}

TEST(DurableRegistry, WarmRestartServesBitwiseIdenticalAnswers) {
  TempDir dir("warm");
  std::vector<la::CMat> cold_answers;
  const auto freqs = sp::log_grid(10.0, 1e5, 7);
  {
    auto registry =
        serving::ModelRegistry::open(dir.str(), {}, no_compaction());
    ASSERT_TRUE(registry) << registry.status().to_string();
    (*registry)->publish("pdn", make_snapshot(12, 2, 81));
    cold_answers = (*registry)->lookup("pdn")->sweep(freqs);
  }
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  const auto warm_answers = (*reopened)->lookup("pdn")->sweep(freqs);
  ASSERT_EQ(warm_answers.size(), cold_answers.size());
  for (std::size_t k = 0; k < freqs.size(); ++k) {
    for (std::size_t i = 0; i < cold_answers[k].rows(); ++i) {
      for (std::size_t j = 0; j < cold_answers[k].cols(); ++j) {
        EXPECT_EQ(cold_answers[k](i, j), warm_answers[k](i, j));
      }
    }
  }
}

// A durable publish's slowest step is the write-ahead journal append. The
// registry's RCU read path must not care: while one publish is stalled
// inside its append (holding the writer mutex), every reader keeps being
// served — from the *previous* state, since the swap only happens after
// the record is durable.
TEST(DurableRegistry, ReadersNeverBlockOnSlowJournalAppend) {
  TempDir dir("rcu_readers");
  std::atomic<bool> armed{false};
  std::atomic<bool> signalled{false};
  std::promise<void> entered;
  std::promise<void> release;
  auto release_future = release.get_future().share();
  serving::RegistryPersistenceOptions persist;
  persist.fault_injector = std::make_shared<io::FaultInjector>();
  persist.fault_injector->set_before_write([&] {
    if (!armed.load()) return;
    if (!signalled.exchange(true)) entered.set_value();
    release_future.wait();
  });
  auto opened = serving::ModelRegistry::open(dir.str(), {}, persist);
  ASSERT_TRUE(opened) << opened.status().to_string();
  serving::ModelRegistry& registry = **opened;
  registry.publish("m", make_snapshot(8, 2, 91));  // unstalled (not armed)

  armed.store(true);
  std::thread publisher([&] {
    registry.publish("m", make_snapshot(10, 2, 92));
  });
  entered.get_future().wait();  // publisher holds the writer mutex now

  auto reads = std::async(std::launch::async, [&] {
    for (int i = 0; i < 1000; ++i) {
      const auto model = registry.acquire("m");
      if (!model || model->info.version != 1) return false;
      if (model->handle->order() != 8) return false;
      if (registry.lookup("m") == nullptr) return false;
      if (registry.list().size() != 1 || registry.size() != 1) return false;
      if (!registry.info("m")) return false;
    }
    return true;
  });
  // Mutex-taking readers would sit behind the stalled publish until the
  // test times out; lock-free ones finish (far) within the bound.
  ASSERT_EQ(reads.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "a reader blocked behind the stalled publish";
  EXPECT_TRUE(reads.get());
  EXPECT_EQ(registry.info("m")->version, 1u);  // swap is after the append

  release.set_value();
  publisher.join();
  EXPECT_EQ(registry.info("m")->version, 2u);
  EXPECT_EQ(registry.lookup("m")->order(), 10u);
}

// --- fault injection --------------------------------------------------------

// A refused write-ahead append must leave the registry *observably*
// unchanged: the mutation throws (or errors), no version is consumed, and
// every reader keeps seeing the pre-fault state — on disk and in memory.
TEST(FaultInjection, RefusedAppendLeavesRegistryUnchanged) {
  TempDir dir("fail_once");
  serving::RegistryPersistenceOptions persist = no_compaction();
  persist.fault_injector = std::make_shared<io::FaultInjector>();
  auto opened = serving::ModelRegistry::open(dir.str(), {}, persist);
  ASSERT_TRUE(opened) << opened.status().to_string();
  serving::ModelRegistry& registry = **opened;
  registry.publish("m", make_snapshot(8, 2, 101));
  const auto before = registry.export_state();
  const auto generation = registry.generation();

  persist.fault_injector->arm(io::FaultInjector::Mode::FailOnce);
  EXPECT_THROW(registry.publish("m", make_snapshot(10, 2, 102)),
               std::runtime_error);
  EXPECT_EQ(persist.fault_injector->fired(), 1u);
  expect_states_identical(before, registry.export_state());
  EXPECT_EQ(registry.generation(), generation);
  EXPECT_EQ(registry.info("m")->version, 1u);
  EXPECT_EQ(registry.lookup("m")->order(), 8u);

  // FailOnce auto-disarms: the retry consumes the version the refused
  // publish never got.
  EXPECT_EQ(registry.publish("m", make_snapshot(10, 2, 102)), 2u);
  EXPECT_EQ(registry.info("m")->version, 2u);

  // A refused rollback reports instead of throwing, and changes nothing.
  persist.fault_injector->arm(io::FaultInjector::Mode::FailOnce);
  const auto rolled = registry.rollback("m");
  ASSERT_FALSE(rolled);
  EXPECT_EQ(rolled.status().code(), api::StatusCode::Internal);
  EXPECT_EQ(registry.info("m")->version, 2u);

  // Durability: the fault never reached the file, so a reopen agrees.
  const auto after = registry.export_state();
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(after, (*reopened)->export_state());
}

// An injected short write models a crash mid-append: the torn prefix
// stays on disk (the failed publish never went live) and the next open
// truncates it away, recovering everything flushed before it.
TEST(FaultInjection, ShortWriteTornPrefixRecoversOnReopen) {
  TempDir dir("short_write");
  std::vector<serving::ModelRegistry::EntryState> before;
  const fs::path journal = dir.path() / "registry.journal";
  std::size_t clean_size = 0;
  {
    serving::RegistryPersistenceOptions persist = no_compaction();
    persist.fault_injector = std::make_shared<io::FaultInjector>();
    auto opened = serving::ModelRegistry::open(dir.str(), {}, persist);
    ASSERT_TRUE(opened) << opened.status().to_string();
    serving::ModelRegistry& registry = **opened;
    registry.publish("m", make_snapshot(8, 2, 111));
    registry.publish("n", make_snapshot(6, 2, 112));
    before = registry.export_state();
    clean_size = static_cast<std::size_t>(fs::file_size(journal));

    persist.fault_injector->arm(io::FaultInjector::Mode::ShortWrite);
    EXPECT_THROW(registry.publish("m", make_snapshot(10, 2, 113)),
                 std::runtime_error);
    expect_states_identical(before, registry.export_state());
  }  // "crash": the torn prefix is still in the file
  EXPECT_GT(fs::file_size(journal), clean_size);
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(before, (*reopened)->export_state());
  // Recovery truncated the torn bytes, so the journal is clean again and
  // the fleet keeps mutating normally.
  EXPECT_EQ(fs::file_size(journal), clean_size);
  EXPECT_EQ((*reopened)->publish("m", make_snapshot(10, 2, 113)), 2u);
}

// ENOSPC persists until space is freed: every mutation is refused (and
// harmless), then all succeed after disarm.
TEST(FaultInjection, NoSpaceRefusesEveryMutationUntilDisarmed) {
  TempDir dir("enospc");
  serving::RegistryPersistenceOptions persist = no_compaction();
  persist.fault_injector = std::make_shared<io::FaultInjector>();
  auto opened = serving::ModelRegistry::open(dir.str(), {}, persist);
  ASSERT_TRUE(opened) << opened.status().to_string();
  serving::ModelRegistry& registry = **opened;
  registry.publish("m", make_snapshot(8, 2, 121));
  const auto before = registry.export_state();

  persist.fault_injector->arm(io::FaultInjector::Mode::NoSpace);
  EXPECT_THROW(registry.publish("m", make_snapshot(10, 2, 122)),
               std::runtime_error);
  EXPECT_THROW(registry.publish("x", make_snapshot(4, 2, 123)),
               std::runtime_error);
  EXPECT_THROW(registry.remove("m"), std::runtime_error);
  EXPECT_GE(persist.fault_injector->fired(), 3u);
  expect_states_identical(before, registry.export_state());

  persist.fault_injector->disarm();
  EXPECT_EQ(registry.publish("m", make_snapshot(10, 2, 122)), 2u);
  EXPECT_TRUE(registry.remove("m"));
  auto reopened =
      serving::ModelRegistry::open(dir.str(), {}, no_compaction());
  ASSERT_TRUE(reopened) << reopened.status().to_string();
  expect_states_identical(registry.export_state(),
                          (*reopened)->export_state());
}

// --- Touchstone export ------------------------------------------------------

TEST(TouchstoneExport, FitExportRereadRefitWithinTolerance) {
  TempDir dir("touchstone");
  // Fit a model to samples of a known system...
  const ss::DescriptorSystem truth = make_system(10, 2, 91);
  const auto freqs = sp::log_grid(10.0, 1e5, 40);
  const sp::SampleSet data = sp::sample_system(truth, freqs);
  const auto report = api::Fitter().fit(data);
  ASSERT_TRUE(report) << report.status().to_string();
  // ...export the fitted model through the Touchstone writer...
  const std::string path = (dir.path() / "model.s2p").string();
  io::write_touchstone_model(path, report->model, freqs);
  // ...re-read it and refit: the round-tripped model must still match the
  // original samples (text precision, not bitwise — hence the tolerance).
  const io::TouchstoneData reread = io::read_touchstone_file(path);
  ASSERT_EQ(reread.samples.size(), freqs.size());
  const auto refit = api::Fitter().fit(reread.samples);
  ASSERT_TRUE(refit) << refit.status().to_string();
  EXPECT_LT(metrics::model_error(refit->model, data), 1e-6);
}
