// Tests for descriptor systems, transfer-function evaluation, poles,
// stability, and the random stable MIMO generator.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "statespace/descriptor.hpp"
#include "statespace/random_system.hpp"
#include "statespace/response.hpp"

namespace la = mfti::la;
namespace ss = mfti::ss;
using la::CMat;
using la::Complex;
using la::Mat;

namespace {

// First-order low-pass H(s) = 1 / (s + 1).
ss::DescriptorSystem lowpass() {
  return {Mat{{1}}, Mat{{-1}}, Mat{{1}}, Mat{{1}}, Mat{{0}}};
}

}  // namespace

TEST(Descriptor, ValidateAcceptsConsistent) {
  EXPECT_NO_THROW(lowpass().validate());
}

TEST(Descriptor, ValidateRejectsBadShapes) {
  ss::DescriptorSystem bad = lowpass();
  bad.e = Mat(2, 2);
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = lowpass();
  bad.b = Mat(2, 1);
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = lowpass();
  bad.c = Mat(1, 2);
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = lowpass();
  bad.d = Mat(2, 2);
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  bad = lowpass();
  bad.a = Mat(1, 2);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Descriptor, RoundTripComplexConversion) {
  ss::DescriptorSystem sys = lowpass();
  ss::ComplexDescriptorSystem c = ss::to_complex(sys);
  ss::DescriptorSystem back = ss::to_real(c);
  EXPECT_TRUE(la::approx_equal(back.a, sys.a));
  EXPECT_TRUE(la::approx_equal(back.e, sys.e));
}

TEST(Descriptor, ToRealRejectsTrulyComplex) {
  ss::ComplexDescriptorSystem c = ss::to_complex(lowpass());
  c.a(0, 0) = Complex(0.0, 1.0);
  EXPECT_THROW(ss::to_real(c), std::invalid_argument);
}

TEST(Response, LowpassDcGainAndRolloff) {
  ss::DescriptorSystem sys = lowpass();
  const CMat h0 = ss::transfer_function(sys, Complex(0.0, 0.0));
  EXPECT_NEAR(h0(0, 0).real(), 1.0, 1e-12);
  // |H(j)| = 1/sqrt(2) at the corner (w = 1).
  const CMat h1 = ss::transfer_function(sys, Complex(0.0, 1.0));
  EXPECT_NEAR(std::abs(h1(0, 0)), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Response, EvaluationAtPoleThrows) {
  ss::DescriptorSystem sys = lowpass();
  EXPECT_THROW(ss::transfer_function(sys, Complex(-1.0, 0.0)),
               la::SingularMatrixError);
}

TEST(Response, ConjugateSymmetryOfRealSystem) {
  la::Rng rng(5);
  ss::RandomSystemOptions opts;
  opts.order = 12;
  opts.num_outputs = 3;
  opts.num_inputs = 3;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(opts, rng);
  const Complex s(0.0, 2.0 * std::numbers::pi * 123.0);
  const CMat hp = ss::transfer_function(sys, s);
  const CMat hm = ss::transfer_function(sys, std::conj(s));
  EXPECT_TRUE(la::approx_equal(hm, hp.conjugate(), 1e-10, 1e-10));
}

TEST(Response, FrequencyResponseMatchesPointEvaluation) {
  la::Rng rng(6);
  ss::RandomSystemOptions opts;
  opts.order = 8;
  opts.num_outputs = 2;
  opts.num_inputs = 2;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(opts, rng);
  const std::vector<double> freqs{10.0, 100.0, 1000.0};
  const auto resp = ss::frequency_response(sys, freqs);
  ASSERT_EQ(resp.size(), 3u);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const Complex s(0.0, 2.0 * std::numbers::pi * freqs[i]);
    EXPECT_TRUE(la::approx_equal(resp[i], ss::transfer_function(sys, s),
                                 1e-10, 1e-10));
  }
}

TEST(Response, PolesOfKnownSystem) {
  // diag system with poles -1, -3.
  ss::DescriptorSystem sys{Mat::identity(2), Mat::diagonal({-1.0, -3.0}),
                           Mat{{1}, {1}}, Mat{{1, 1}}, Mat{{0}}};
  auto p = ss::poles(sys);
  ASSERT_EQ(p.size(), 2u);
  const double re0 = std::min(p[0].real(), p[1].real());
  const double re1 = std::max(p[0].real(), p[1].real());
  EXPECT_NEAR(re0, -3.0, 1e-9);
  EXPECT_NEAR(re1, -1.0, 1e-9);
}

TEST(Response, SingularEGivesFewerFinitePoles) {
  // E = diag(1, 0): one finite pole only.
  ss::DescriptorSystem sys{Mat::diagonal({1.0, 0.0}),
                           Mat::diagonal({-2.0, 1.0}), Mat{{1}, {0}},
                           Mat{{1, 0}}, Mat{{0}}};
  auto p = ss::poles(sys);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_NEAR(p[0].real(), -2.0, 1e-9);
}

TEST(Response, StabilityCheck) {
  EXPECT_TRUE(ss::is_stable(lowpass()));
  ss::DescriptorSystem unstable{Mat{{1}}, Mat{{0.5}}, Mat{{1}}, Mat{{1}},
                                Mat{{0}}};
  EXPECT_FALSE(ss::is_stable(unstable));
}

TEST(Response, BodeMagnitudeMatchesAbs) {
  ss::DescriptorSystem sys = lowpass();
  const std::vector<double> freqs{0.01, 0.1, 1.0};
  const auto mag = ss::bode_magnitude(sys, freqs, 0, 0);
  ASSERT_EQ(mag.size(), 3u);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const Complex s(0.0, 2.0 * std::numbers::pi * freqs[i]);
    EXPECT_NEAR(mag[i], std::abs(ss::transfer_function(sys, s)(0, 0)),
                1e-12);
  }
  EXPECT_THROW(ss::bode_magnitude(sys, freqs, 1, 0), std::invalid_argument);
}

// --- random system generator ------------------------------------------------

class RandomSystem : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomSystem, IsStableWithRequestedDimensions) {
  la::Rng rng(40 + GetParam());
  ss::RandomSystemOptions opts;
  opts.order = GetParam();
  opts.num_outputs = 4;
  opts.num_inputs = 3;
  opts.rank_d = 2;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(opts, rng);
  EXPECT_EQ(sys.order(), opts.order);
  EXPECT_EQ(sys.num_outputs(), 4u);
  EXPECT_EQ(sys.num_inputs(), 3u);
  EXPECT_TRUE(ss::is_stable(sys));
}

TEST_P(RandomSystem, PolesLieInRequestedBand) {
  la::Rng rng(80 + GetParam());
  ss::RandomSystemOptions opts;
  opts.order = GetParam();
  opts.num_outputs = 2;
  opts.num_inputs = 2;
  opts.f_min_hz = 100.0;
  opts.f_max_hz = 1e4;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(opts, rng);
  for (const Complex& p : ss::poles(sys)) {
    const double wmag = std::abs(p);
    EXPECT_GE(wmag, 2.0 * std::numbers::pi * opts.f_min_hz * 0.5);
    EXPECT_LE(wmag, 2.0 * std::numbers::pi * opts.f_max_hz * 2.0);
    EXPECT_LT(p.real(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, RandomSystem,
                         ::testing::Values(2, 3, 7, 16, 31));

TEST(RandomSystemD, RankControl) {
  la::Rng rng(90);
  ss::RandomSystemOptions opts;
  opts.order = 10;
  opts.num_outputs = 5;
  opts.num_inputs = 5;
  opts.rank_d = 3;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(opts, rng);
  const auto s = la::singular_values(sys.d);
  EXPECT_EQ(la::numerical_rank(s, 1e-10), 3u);
}

TEST(RandomSystemD, ZeroRankGivesStrictlyProper) {
  la::Rng rng(91);
  ss::RandomSystemOptions opts;
  opts.order = 6;
  opts.num_outputs = 2;
  opts.num_inputs = 2;
  opts.rank_d = 0;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(opts, rng);
  EXPECT_EQ(sys.d.max_abs(), 0.0);
}

TEST(RandomSystemD, InvalidOptionsThrow) {
  la::Rng rng(92);
  ss::RandomSystemOptions opts;
  opts.order = 0;
  EXPECT_THROW(ss::random_stable_mimo(opts, rng), std::invalid_argument);
  opts.order = 4;
  opts.f_max_hz = opts.f_min_hz;
  EXPECT_THROW(ss::random_stable_mimo(opts, rng), std::invalid_argument);
  opts.f_max_hz = 1e5;
  opts.min_damping = -1.0;
  EXPECT_THROW(ss::random_stable_mimo(opts, rng), std::invalid_argument);
}
