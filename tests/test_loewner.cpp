// Tests for the Loewner framework: tangential data generation (eqs. (6)-(9)),
// Loewner/shifted-Loewner matrices (eqs. (11)-(12)), the Sylvester
// identities (13), the real transform (Lemma 3.2) and the SVD realization
// (Lemmas 3.1/3.4).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/norms.hpp"
#include "linalg/svd.hpp"
#include "loewner/matrices.hpp"
#include "loewner/real_transform.hpp"
#include "loewner/realization.hpp"
#include "loewner/tangential.hpp"
#include "metrics/error.hpp"
#include "sampling/grid.hpp"
#include "sampling/sampler.hpp"
#include "statespace/random_system.hpp"
#include "statespace/response.hpp"

namespace la = mfti::la;
namespace ss = mfti::ss;
namespace sp = mfti::sampling;
namespace lw = mfti::loewner;
using la::CMat;
using la::Complex;
using la::Mat;

namespace {

// Small ground-truth system shared across tests.
ss::DescriptorSystem make_system(std::size_t order, std::size_t ports,
                                 std::size_t rank_d, std::uint64_t seed) {
  la::Rng rng(seed);
  ss::RandomSystemOptions opts;
  opts.order = order;
  opts.num_outputs = ports;
  opts.num_inputs = ports;
  opts.rank_d = rank_d;
  opts.f_min_hz = 10.0;
  opts.f_max_hz = 1e5;
  return ss::random_stable_mimo(opts, rng);
}

sp::SampleSet sample(const ss::DescriptorSystem& sys, std::size_t k) {
  return sp::sample_system(sys, sp::log_grid(10.0, 1e5, k));
}

}  // namespace

TEST(TangentialData, StructureForUniformT) {
  const auto sys = make_system(8, 3, 0, 1);
  const auto data = sample(sys, 6);
  lw::TangentialOptions opts;
  opts.uniform_t = 2;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  // 6 samples: 3 right pairs + 3 left pairs, each pair 2*t wide.
  EXPECT_EQ(td.num_right_pairs(), 3u);
  EXPECT_EQ(td.num_left_pairs(), 3u);
  EXPECT_EQ(td.right_width(), 12u);
  EXPECT_EQ(td.left_height(), 12u);
  EXPECT_EQ(td.num_inputs(), 3u);
  EXPECT_EQ(td.num_outputs(), 3u);
  EXPECT_NO_THROW(td.validate());
}

TEST(TangentialData, DefaultTIsFullMatrix) {
  const auto sys = make_system(8, 3, 0, 2);
  const auto data = sample(sys, 4);
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  EXPECT_EQ(td.right_t[0], 3u);          // min(m, p)
  EXPECT_EQ(td.right_width(), 12u);      // 2 pairs * 2 * t
  EXPECT_EQ(td.left_height(), 12u);
}

TEST(TangentialData, AlternatingFrequencySplit) {
  const auto sys = make_system(6, 2, 0, 3);
  const auto data = sample(sys, 6);
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  const auto f = data.frequencies();
  // Even-position samples are right points, odd are left points.
  EXPECT_EQ(td.right_freq_hz[0], f[0]);
  EXPECT_EQ(td.left_freq_hz[0], f[1]);
  EXPECT_EQ(td.right_freq_hz[1], f[2]);
  EXPECT_EQ(td.left_freq_hz[1], f[3]);
}

TEST(TangentialData, ConjugatePointsInterleaved) {
  const auto sys = make_system(6, 2, 0, 4);
  const auto data = sample(sys, 4);
  lw::TangentialOptions opts;
  opts.uniform_t = 2;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  // First pair occupies columns 0..3: lambda, lambda, conj, conj.
  EXPECT_EQ(td.lambda[0], td.lambda[1]);
  EXPECT_EQ(td.lambda[2], std::conj(td.lambda[0]));
  EXPECT_GT(td.lambda[0].imag(), 0.0);
}

TEST(TangentialData, WEqualsSTimesR) {
  const auto sys = make_system(6, 3, 1, 5);
  const auto data = sample(sys, 4);
  lw::TangentialOptions opts;
  opts.uniform_t = 2;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  // Check W = S * R on the first (non-conjugate) half of right pair 0.
  const CMat s0 = data[0].s;
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t i = 0; i < 3; ++i) {
      Complex acc{};
      for (std::size_t q = 0; q < 3; ++q) acc += s0(i, q) * td.r(q, c);
      EXPECT_NEAR(std::abs(acc - td.w(i, c)), 0.0, 1e-12);
    }
  }
}

TEST(TangentialData, PerSampleTWeights) {
  const auto sys = make_system(6, 3, 0, 6);
  const auto data = sample(sys, 4);
  lw::TangentialOptions opts;
  opts.t_per_sample = {3, 2, 2, 1};
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  EXPECT_EQ(td.right_t[0], 3u);
  EXPECT_EQ(td.right_t[1], 2u);
  EXPECT_EQ(td.left_t[0], 2u);
  EXPECT_EQ(td.left_t[1], 1u);
  EXPECT_EQ(td.right_width(), 2u * (3u + 2u));
  EXPECT_EQ(td.left_height(), 2u * (2u + 1u));
}

TEST(TangentialData, InvalidOptionsThrow) {
  const auto sys = make_system(4, 2, 0, 7);
  const auto data = sample(sys, 4);
  lw::TangentialOptions opts;
  opts.uniform_t = 5;  // > min(m, p)
  EXPECT_THROW(lw::build_tangential_data(data, opts), std::invalid_argument);
  opts.uniform_t = 0;
  opts.t_per_sample = {1, 1};  // wrong length
  EXPECT_THROW(lw::build_tangential_data(data, opts), std::invalid_argument);
  EXPECT_THROW(lw::build_tangential_data(data.prefix(1), {}),
               std::invalid_argument);
}

TEST(TangentialData, ValidateCatchesCorruption) {
  const auto sys = make_system(4, 2, 0, 8);
  const auto data = sample(sys, 4);
  lw::TangentialData td = lw::build_tangential_data(data, {});
  td.lambda[0] = Complex(1.0, 2.0);  // breaks conjugate pairing
  EXPECT_THROW(td.validate(), std::invalid_argument);
}

TEST(TangentialData, PairRangeBookkeeping) {
  const auto sys = make_system(4, 2, 0, 9);
  const auto data = sample(sys, 4);
  lw::TangentialOptions opts;
  opts.t_per_sample = {2, 1, 1, 2};
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  const auto [r0, r1] = td.right_pair_cols(0);
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 4u);
  const auto [r2, r3] = td.right_pair_cols(1);
  EXPECT_EQ(r2, 4u);
  EXPECT_EQ(r3, 6u);
  EXPECT_THROW(td.right_pair_cols(2), std::invalid_argument);
  EXPECT_THROW(td.left_pair_rows(9), std::invalid_argument);
}

// --- Loewner matrices + Sylvester identities --------------------------------

struct LoewnerCase {
  std::size_t order;
  std::size_t ports;
  std::size_t rank_d;
  std::size_t samples;
  std::size_t t;  // 0 = full
};

class LoewnerProperty : public ::testing::TestWithParam<LoewnerCase> {};

TEST_P(LoewnerProperty, SylvesterEquationsHold) {
  const auto c = GetParam();
  const auto sys = make_system(c.order, c.ports, c.rank_d, 11 + c.order);
  const auto data = sample(sys, c.samples);
  lw::TangentialOptions opts;
  opts.uniform_t = c.t;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  const auto [ll, sll] = lw::loewner_pair(td);
  const auto [r1, r2] = lw::sylvester_residuals(td, ll, sll);
  EXPECT_LT(r1, 1e-10);
  EXPECT_LT(r2, 1e-10);
}

TEST_P(LoewnerProperty, PairMatchesIndividualConstruction) {
  const auto c = GetParam();
  const auto sys = make_system(c.order, c.ports, c.rank_d, 23 + c.order);
  const auto data = sample(sys, c.samples);
  lw::TangentialOptions opts;
  opts.uniform_t = c.t;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  const auto [ll, sll] = lw::loewner_pair(td);
  EXPECT_TRUE(la::approx_equal(ll, lw::loewner_matrix(td), 1e-12, 1e-12));
  EXPECT_TRUE(
      la::approx_equal(sll, lw::shifted_loewner_matrix(td), 1e-12, 1e-12));
}

TEST_P(LoewnerProperty, RealTransformProducesRealPencil) {
  const auto c = GetParam();
  const auto sys = make_system(c.order, c.ports, c.rank_d, 37 + c.order);
  const auto data = sample(sys, c.samples);
  lw::TangentialOptions opts;
  opts.uniform_t = c.t;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  // real_transform itself throws if any output fails the realness check,
  // so reaching here is the assertion; spot-check shapes too.
  const lw::RealLoewnerPencil rp = lw::real_transform(td);
  EXPECT_EQ(rp.loewner.rows(), td.left_height());
  EXPECT_EQ(rp.loewner.cols(), td.right_width());
  EXPECT_EQ(rp.v.cols(), td.num_inputs());
  EXPECT_EQ(rp.w.rows(), td.num_outputs());
}

TEST_P(LoewnerProperty, RealTransformPreservesSingularValues) {
  const auto c = GetParam();
  const auto sys = make_system(c.order, c.ports, c.rank_d, 53 + c.order);
  const auto data = sample(sys, c.samples);
  lw::TangentialOptions opts;
  opts.uniform_t = c.t;
  const lw::TangentialData td = lw::build_tangential_data(data, opts);
  const auto [ll, sll] = lw::loewner_pair(td);
  const lw::RealLoewnerPencil rp = lw::real_transform(td, ll, sll);
  // T is unitary, so singular values are invariant.
  const auto s_before = la::singular_values(ll);
  const auto s_after = la::singular_values(rp.loewner);
  ASSERT_EQ(s_before.size(), s_after.size());
  for (std::size_t i = 0; i < s_before.size(); ++i) {
    EXPECT_NEAR(s_before[i], s_after[i],
                1e-8 * (1.0 + std::abs(s_before[0])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LoewnerProperty,
    ::testing::Values(LoewnerCase{6, 2, 0, 6, 0}, LoewnerCase{8, 3, 1, 6, 2},
                      LoewnerCase{10, 2, 2, 8, 1},
                      LoewnerCase{12, 4, 4, 6, 0},
                      LoewnerCase{5, 3, 0, 7, 2},   // odd sample count
                      LoewnerCase{16, 2, 1, 10, 2}));

TEST(LoewnerMatrices, PairTransformIsUnitary) {
  const CMat t = lw::pair_transform({2, 1, 3});
  EXPECT_EQ(t.rows(), 12u);
  EXPECT_TRUE(la::approx_equal(t.adjoint() * t, CMat::identity(12), 1e-12,
                               1e-12));
}

TEST(LoewnerMatrices, CoincidentPointsThrow) {
  // Hand-craft data where a left point equals a right point.
  lw::TangentialData td;
  const Complex j(0.0, 1.0);
  td.lambda = {j, -j};
  td.mu = {j, -j};  // same as lambda -> must throw
  td.r = CMat(1, 2, Complex(1, 0));
  td.w = CMat(1, 2, Complex(1, 0));
  td.l = CMat(2, 1, Complex(1, 0));
  td.v = CMat(2, 1, Complex(1, 0));
  td.right_t = {1};
  td.left_t = {1};
  td.right_freq_hz = {1.0};
  td.left_freq_hz = {1.0};
  EXPECT_THROW(lw::loewner_matrix(td), std::invalid_argument);
  EXPECT_THROW(lw::shifted_loewner_matrix(td), std::invalid_argument);
}

// --- Rank structure (Lemma 3.3 / Fig. 1) -------------------------------------

TEST(LoewnerRank, DropsAtOrderAndOrderPlusRankD) {
  // Oversampled MFTI data: rank(LL) ~ order, rank(x0 LL - sLL) ~ order +
  // rank(D) — the Fig. 1 drop positions.
  const std::size_t order = 10, ports = 4, rank_d = 3;
  const auto sys = make_system(order, ports, rank_d, 71);
  const auto data = sample(sys, 10);  // K = 10*4 = 40 >> 13
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  const lw::PencilSingularValues sv = lw::pencil_singular_values(td);
  EXPECT_EQ(la::rank_by_largest_gap(sv.loewner, 1e3), order);
  EXPECT_EQ(la::rank_by_largest_gap(sv.pencil, 1e3), order + rank_d);
}

TEST(LoewnerRank, Lemma33UpperBound) {
  const std::size_t order = 8, ports = 3, rank_d = 2;
  const auto sys = make_system(order, ports, rank_d, 73);
  const auto data = sample(sys, 12);  // K = 36 > 10
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  const lw::PencilSingularValues sv = lw::pencil_singular_values(td);
  EXPECT_LE(la::numerical_rank(sv.pencil, 1e-8), order + rank_d);
  EXPECT_LE(la::numerical_rank(sv.loewner, 1e-8), order + rank_d);
}

// --- Realization -------------------------------------------------------------

TEST(Realization, RecoversSystemNoiseFree) {
  const std::size_t order = 12, ports = 3, rank_d = 3;
  const auto sys = make_system(order, ports, rank_d, 101);
  const auto data = sample(sys, 12);
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  const lw::Realization real = lw::realize(td);
  EXPECT_EQ(real.order, order + rank_d);
  EXPECT_LT(mfti::metrics::model_error(real.model, data), 1e-8);
}

TEST(Realization, ModelMatchesOffSampleFrequencies) {
  const std::size_t order = 10, ports = 2, rank_d = 1;
  const auto sys = make_system(order, ports, rank_d, 103);
  const auto data = sample(sys, 14);
  const lw::Realization real = lw::realize(lw::build_tangential_data(data, {}));
  // Evaluate on a much denser grid than the fit used.
  const auto dense = sample(sys, 57);
  EXPECT_LT(mfti::metrics::model_error(real.model, dense), 1e-6);
}

TEST(Realization, ComplexShiftedPencilSatisfiesInterpolation) {
  const std::size_t order = 8, ports = 2, rank_d = 2;
  const auto sys = make_system(order, ports, rank_d, 107);
  const auto data = sample(sys, 10);
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  lw::RealizationOptions opts;
  opts.pencil = lw::SvdPencil::ShiftedPencil;
  const lw::ComplexRealization cr = lw::realize_complex(td, opts);
  EXPECT_EQ(cr.order, order + rank_d);
  // Right constraints H(lambda_i) R_i = W_i (eq. (10)).
  for (std::size_t pair = 0; pair < td.num_right_pairs(); ++pair) {
    const auto [c0, c1] = td.right_pair_cols(pair);
    const CMat h = ss::transfer_function(cr.model, td.lambda[c0]);
    for (std::size_t c = c0; c < c0 + td.right_t[pair]; ++c) {
      for (std::size_t i = 0; i < td.num_outputs(); ++i) {
        Complex acc{};
        for (std::size_t q = 0; q < td.num_inputs(); ++q)
          acc += h(i, q) * td.r(q, c);
        EXPECT_NEAR(std::abs(acc - td.w(i, c)), 0.0,
                    1e-7 * (1.0 + std::abs(td.w(i, c))));
      }
    }
    (void)c1;
  }
}

TEST(Realization, FullComplexRealizationInterpolates) {
  // Lemma 3.1 without truncation: K = Kl = Kr <= order keeps the pencil
  // regular; the raw (-LL, -sLL, V, W) model must satisfy (10).
  const std::size_t order = 12, ports = 2;
  const auto sys = make_system(order, ports, 2, 109);
  const auto data = sample(sys, 4);  // K = 8 < order
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  const ss::ComplexDescriptorSystem model = lw::realize_full_complex(td);
  EXPECT_EQ(model.order(), td.right_width());
  for (std::size_t pair = 0; pair < td.num_left_pairs(); ++pair) {
    const auto [r0, r1] = td.left_pair_rows(pair);
    const CMat h = ss::transfer_function(model, td.mu[r0]);
    for (std::size_t r = r0; r < r0 + td.left_t[pair]; ++r) {
      for (std::size_t j = 0; j < td.num_inputs(); ++j) {
        Complex acc{};
        for (std::size_t q = 0; q < td.num_outputs(); ++q)
          acc += td.l(r, q) * h(q, j);
        EXPECT_NEAR(std::abs(acc - td.v(r, j)), 0.0,
                    1e-6 * (1.0 + std::abs(td.v(r, j))));
      }
    }
    (void)r1;
  }
}

TEST(Realization, FixedOrderSelection) {
  const auto sys = make_system(10, 2, 0, 113);
  const auto data = sample(sys, 10);
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  lw::RealizationOptions opts;
  opts.selection = lw::OrderSelection::Fixed;
  opts.fixed_order = 6;
  const lw::Realization real = lw::realize(td, opts);
  EXPECT_EQ(real.order, 6u);
  EXPECT_EQ(real.model.order(), 6u);
}

TEST(Realization, ToleranceSelectionKeepsNoiseSubspace) {
  const auto sys = make_system(8, 2, 0, 127);
  const auto data = sample(sys, 8);
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  lw::RealizationOptions tight;
  tight.selection = lw::OrderSelection::Tolerance;
  tight.rank_tol = 1e-9;
  lw::RealizationOptions loose;
  loose.selection = lw::OrderSelection::Tolerance;
  loose.rank_tol = 1e-2;
  EXPECT_GE(lw::realize(td, tight).order, lw::realize(td, loose).order);
}

TEST(Realization, RejectsSquarePencilMismatch) {
  const auto sys = make_system(6, 2, 0, 131);
  const auto data = sample(sys, 5);  // odd -> Kl != Kr
  const lw::TangentialData td = lw::build_tangential_data(data, {});
  EXPECT_THROW(lw::realize_full_complex(td), std::invalid_argument);
}

TEST(Realization, RealizedModelIsRealAndValid) {
  const auto sys = make_system(10, 3, 1, 137);
  const auto data = sample(sys, 8);
  const lw::Realization real =
      lw::realize(lw::build_tangential_data(data, {}));
  EXPECT_NO_THROW(real.model.validate());
  EXPECT_EQ(real.model.num_inputs(), 3u);
  EXPECT_EQ(real.model.num_outputs(), 3u);
}
