/// \file mfti_serve.cpp
/// \brief The out-of-process serving daemon: opens a durable model fleet
/// (`serving::ModelRegistry::open`, warm restart from `--dir`) and exposes
/// it over the HTTP/1.1 front (`net::ServingFront`).
///
///   mfti_serve --dir fleet/ [--port 8080] [--port-file port.txt]
///
/// Configuration beyond the flags comes from the `MFTI_HTTP_*` (front),
/// `MFTI_CACHE_*` (engine cache economics) and `MFTI_TRACE_*` (request
/// tracing, docs/observability.md) environment knobs (see
/// docs/serving-protocol.md and docs/operations.md). `--port 0` binds an
/// ephemeral port; `--port-file` writes the resolved port for launchers
/// that need to discover it (the CI loopback job does). SIGTERM/SIGINT
/// trigger a graceful drain: in-flight requests complete, then the process
/// exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/net.hpp"
#include "obs/build_info.hpp"
#include "serving/serving.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --dir <registry-dir> [--port <n>] "
               "[--port-file <path>]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  namespace net = mfti::net;
  namespace serving = mfti::serving;

  std::string dir;
  std::string port_file;
  net::ServingFrontOptions opts = net::ServingFrontOptions::from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      opts.port = std::atoi(argv[++i]);
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (dir.empty()) return usage(argv[0]);

  serving::ModelRegistryOptions registry_opts;
  if (auto policy = serving::verification_policy_from_env()) {
    registry_opts.verification =
        std::make_shared<const serving::VerificationPolicy>(
            std::move(*policy));
    std::fprintf(stderr,
                 "mfti_serve: publish verification gate enabled "
                 "(MFTI_VERIFY)\n");
  }
  auto registry = serving::ModelRegistry::open(dir, registry_opts);
  if (!registry) {
    std::fprintf(stderr, "mfti_serve: cannot open registry '%s': %s\n",
                 dir.c_str(), registry.status().to_string().c_str());
    return 1;
  }
  serving::ServingEngine engine(**registry,
                                serving::ServingEngineOptions::from_env());
  net::ServingFront front(engine, **registry, opts);

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  const mfti::api::Status started = front.start();
  if (!started.is_ok()) {
    std::fprintf(stderr, "mfti_serve: cannot start: %s\n",
                 started.to_string().c_str());
    return 1;
  }
  const mfti::obs::BuildInfo build = mfti::obs::build_info();
  std::fprintf(stderr,
               "mfti_serve: serving %zu model(s) from '%s' on port %d "
               "(version %s, %s, simd %s)\n",
               (*registry)->list().size(), dir.c_str(), front.port(),
               build.version.c_str(), build.compiler.c_str(),
               build.simd.c_str());
  if (opts.trace.enabled) {
    std::fprintf(stderr,
                 "mfti_serve: request tracing on (ring %zu, slow >= %g ms; "
                 "MFTI_TRACE=0 disables)\n",
                 opts.trace.ring_capacity, opts.trace.slow_threshold_ms);
  } else {
    std::fprintf(stderr, "mfti_serve: request tracing off (MFTI_TRACE=0)\n");
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "mfti_serve: cannot write port file '%s'\n",
                   port_file.c_str());
      front.begin_drain();
      return 1;
    }
    std::fprintf(f, "%d\n", front.port());
    std::fclose(f);
  }

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "mfti_serve: draining\n");
  front.begin_drain();
  std::fprintf(stderr, "mfti_serve: drained, exiting\n");
  return 0;
}
