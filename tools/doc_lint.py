#!/usr/bin/env python3
"""Doc lint: keep README.md and docs/ honest against the source tree.

Checks, over every tracked markdown file:

  1. Knob existence — every `MFTI_*` token documented in markdown must
     appear in the source tree (C++ getenv, CMakeLists option, or CI
     workflow), and vice versa: every `MFTI_*` knob the source reads
     must be documented somewhere in markdown.
  2. CLI flags — every backticked `--flag` in markdown must appear in
     the repo's own sources/scripts (small allowlist for flags of
     external tools like cmake/ctest).
  3. Path references — every backticked repo path (starts with src/,
     docs/, tests/, examples/, bench/, tools/ or .github/) must exist.
  4. Relative links — every `[text](relative/path)` markdown link must
     resolve (anchors stripped; http(s) links skipped).

Exit 0 when clean, 1 with one line per violation otherwise. No
dependencies beyond the standard library; CI runs it as the doc-lint
job.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Flags that belong to external tools and are legitimately documented
# without appearing in this repo's sources.
EXTERNAL_FLAGS = {
    "--output-on-failure",  # ctest
    "--build",              # cmake
    "--dry-run",            # clang-format
    "--Werror",             # clang-format
}

# MFTI_* tokens that are build-system cache variables, consumed by name
# in CMakeLists.txt rather than via getenv.
MD_GLOBS = ["README.md", "docs/*.md"]
SOURCE_GLOBS = [
    "src/**/*.cpp", "src/**/*.hpp", "bench/**/*.cpp", "bench/**/*.hpp",
    "bench/**/*.py", "tests/**/*.cpp", "examples/**/*.cpp",
    "tools/**/*.py", "tools/**/*.cpp", "CMakeLists.txt",
    ".github/workflows/*.yml",
]
PATH_PREFIXES = ("src/", "docs/", "tests/", "examples/", "bench/",
                 "tools/", ".github/")

KNOB_RE = re.compile(r"\bMFTI_[A-Z][A-Z0-9_]+\b")
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
FLAG_RE = re.compile(r"^--[A-Za-z][A-Za-z0-9-]*")
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^\s*```")


def files(globs):
    out = []
    for pattern in globs:
        out.extend(p for p in sorted(REPO.glob(pattern)) if p.is_file())
    return out


def read(path):
    return path.read_text(encoding="utf-8", errors="replace")


def markdown_lines(path):
    """(lineno, line, in_fence) triples so checks can skip code fences
    when needed (links) or include them (knobs, paths)."""
    in_fence = False
    for lineno, line in enumerate(read(path).splitlines(), 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        yield lineno, line, in_fence


def main():
    errors = []
    md_files = files(MD_GLOBS)
    src_files = files(SOURCE_GLOBS)
    if not md_files:
        print("doc_lint: no markdown files found", file=sys.stderr)
        return 1
    source_blob = "\n".join(read(p) for p in src_files)
    md_blob = "\n".join(read(p) for p in md_files)

    # Paths that exist only after a build/bench run; documented as
    # workflow artifacts, not repo contents.
    tracked = set(
        subprocess.run(["git", "ls-files"], cwd=REPO, capture_output=True,
                       text=True, check=True).stdout.splitlines())

    # --- 1. knobs: markdown <-> source, both directions ----------------------
    # Forward: anything documented must exist somewhere in the tree.
    # Reverse: only *user-facing* knobs — env vars actually read and CMake
    # options/cache variables — must be documented; internal CMake lists
    # and macros (MFTI_SOURCES, MFTI_AVX2_FN, ...) are implementation.
    documented = set(KNOB_RE.findall(md_blob))
    in_source = set(KNOB_RE.findall(source_blob))
    user_facing = set()
    for pat in (
            r'getenv\(\s*"(MFTI_[A-Z0-9_]+)"',              # C++
            r'environ(?:\.get)?[\(\[]\s*["\'](MFTI_[A-Z0-9_]+)',  # python
            r'option\(\s*(MFTI_[A-Z0-9_]+)',                # CMake option
            r'set\(\s*(MFTI_[A-Z0-9_]+)[^)]*\bCACHE\b',     # CMake cache var
    ):
        user_facing.update(re.findall(pat, source_blob))
    for knob in sorted(documented - in_source):
        errors.append(f"knob `{knob}` is documented but nothing in the "
                      f"source tree defines or reads it")
    for knob in sorted(user_facing - documented):
        errors.append(f"user-facing knob `{knob}` exists in the source "
                      f"tree but no markdown documents it")

    for md in md_files:
        rel = md.relative_to(REPO)
        for lineno, line, in_fence in markdown_lines(md):
            spans = CODE_SPAN_RE.findall(line)
            if in_fence:
                spans.append(line)  # check paths/flags inside fences too

            for span in spans:
                for token in span.split():
                    # --- 2. CLI flags --------------------------------------
                    flag = FLAG_RE.match(token)
                    if flag and flag.group(0) not in EXTERNAL_FLAGS:
                        if flag.group(0) not in source_blob:
                            errors.append(
                                f"{rel}:{lineno}: flag `{flag.group(0)}` "
                                f"not found in the source tree")
                    # --- 3. repo paths -------------------------------------
                    candidate = token.rstrip(".,;:)")
                    if candidate.startswith(PATH_PREFIXES) and \
                            "*" not in candidate and \
                            "<" not in candidate:
                        target = candidate.split("#")[0].rstrip("/")
                        if target and not (REPO / target).exists() and \
                                target not in tracked:
                            errors.append(
                                f"{rel}:{lineno}: path `{candidate}` does "
                                f"not exist in the repo")

            # --- 4. relative links (prose only) ----------------------------
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                plain = target.split("#")[0]
                if not plain:
                    continue  # same-file anchor
                resolved = (md.parent / plain).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{rel}:{lineno}: link target `{target}` does "
                        f"not resolve")

    for err in errors:
        print(f"doc_lint: {err}")
    if errors:
        print(f"doc_lint: {len(errors)} problem(s)")
        return 1
    print(f"doc_lint: OK ({len(md_files)} markdown files, "
          f"{len(documented)} knobs cross-checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
