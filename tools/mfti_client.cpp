/// \file mfti_client.cpp
/// \brief Smoke/bench client of the HTTP serving front, and the fleet
/// seeder the loopback CI job uses.
///
///   mfti_client seed       --dir <registry-dir> [--models N]
///   mfti_client smoke      --port <n> [--host 127.0.0.1] --dir <dir>
///                          [--expect-429]
///   mfti_client bench      --port <n> [--host 127.0.0.1] [--rounds N]
///                          [--json out.json]
///   mfti_client quarantine --port <n> --dir <dir> [--admin-token t]
///   mfti_client trace      --port <n> [--host 127.0.0.1] [--admin-token t]
///
/// `seed` publishes N demo models (named m0..m{N-1}) into a durable
/// registry directory and writes `model-0.mfti` next to it, so a later
/// `mfti_serve --dir` warm-restarts the same fleet. `smoke` asserts
/// loopback parity — every value served over HTTP must match the
/// in-process evaluation of the same snapshot to 1e-12 (and exactly, for
/// the repeated points the engine answers from cache) — plus the protocol
/// edges: models listing, 404 on unknown models, 400 on malformed JSON,
/// and (with `--expect-429`) the rate-limit refusal. `bench` emits the
/// standard bench JSON schema (`bench/compare_bench.py` consumes it).
/// `quarantine` drives the verification gate end-to-end against a server
/// running with `MFTI_VERIFY=1`: publish a deliberately non-passive model,
/// assert it quarantines (404 on eval, listed by the admin API), assert an
/// unforced promote is refused, force-promote, assert it serves, then
/// quarantine-and-discard a second copy. `trace` exercises the request
/// tracing path (docs/observability.md): traced eval with `X-Request-Id` +
/// `X-MFTI-Trace: 1`, header echo and `"timings"` block asserted, then
/// (given an admin token) the `/v1/admin/trace` ring must list the trace
/// with its queue/lookup/factorize-or-cache-hit/solve spans.
///
/// Transient failures: every mode retries refused connections and `429`
/// responses with exponential backoff + deterministic jitter, honoring
/// `Retry-After` (`--max-retries`, `--backoff-ms`; the `--expect-429`
/// burst bypasses the retry layer on purpose). Bench JSON reports the
/// retry count.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "io/snapshot.hpp"
#include "net/net.hpp"
#include "serving/serving.hpp"
#include "statespace/random_system.hpp"

namespace api = mfti::api;
namespace io = mfti::io;
namespace la = mfti::la;
namespace net = mfti::net;
namespace serving = mfti::serving;
namespace ss = mfti::ss;

namespace {

constexpr double kPi = 3.14159265358979323846;

struct Args {
  std::string mode;
  std::string dir;
  std::string host = "127.0.0.1";
  int port = 0;
  std::size_t models = 3;
  std::size_t rounds = 50;
  std::string json_path;
  std::string admin_token;  ///< defaults to $MFTI_HTTP_ADMIN_TOKEN
  std::size_t max_retries = 3;
  std::size_t backoff_ms = 100;
  bool expect_429 = false;
  bool valid = true;
};

Args parse_args(int argc, char** argv) {
  Args out;
  if (argc < 2) {
    out.valid = false;
    return out;
  }
  out.mode = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--dir" && has_value) {
      out.dir = argv[++i];
    } else if (arg == "--host" && has_value) {
      out.host = argv[++i];
    } else if (arg == "--port" && has_value) {
      out.port = std::atoi(argv[++i]);
    } else if (arg == "--models" && has_value) {
      out.models = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--rounds" && has_value) {
      out.rounds = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--json" && has_value) {
      out.json_path = argv[++i];
    } else if (arg == "--admin-token" && has_value) {
      out.admin_token = argv[++i];
    } else if (arg == "--max-retries" && has_value) {
      out.max_retries = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--backoff-ms" && has_value) {
      out.backoff_ms = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--expect-429") {
      out.expect_429 = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      out.valid = false;
      return out;
    }
  }
  if (out.admin_token.empty()) {
    const char* env = std::getenv("MFTI_HTTP_ADMIN_TOKEN");
    if (env != nullptr) out.admin_token = env;
  }
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: mfti_client seed       --dir <d> [--models N]\n"
      "       mfti_client smoke      --port <n> --dir <d> [--host h]"
      " [--expect-429]\n"
      "       mfti_client bench      --port <n> [--host h] [--rounds N]"
      " [--json out.json]\n"
      "       mfti_client quarantine --port <n> --dir <d>"
      " [--admin-token t]\n"
      "       mfti_client trace      --port <n> [--host h]"
      " [--admin-token t]\n"
      "common: [--max-retries N] [--backoff-ms M]\n");
  return 2;
}

ss::DescriptorSystem demo_system(std::size_t index) {
  la::Rng rng(1000 + index);
  ss::RandomSystemOptions opts;
  opts.order = 24 + 8 * index;
  opts.num_outputs = 2;
  opts.num_inputs = 2;
  opts.rank_d = 2;
  opts.f_min_hz = 10.0;
  opts.f_max_hz = 1e5;
  return ss::random_stable_mimo(opts, rng);
}

std::vector<double> demo_freqs(std::size_t count) {
  std::vector<double> freqs;
  freqs.reserve(count);
  const double lo = std::log10(10.0);
  const double hi = std::log10(1e5);
  for (std::size_t i = 0; i < count; ++i) {
    const double t =
        count == 1 ? 0.0
                   : static_cast<double>(i) / static_cast<double>(count - 1);
    freqs.push_back(std::pow(10.0, lo + t * (hi - lo)));
  }
  return freqs;
}

/// One keep-alive connection to the front; reconnects after a
/// `Connection: close` response.
class HttpClient {
 public:
  HttpClient(std::string host, int port)
      : host_(std::move(host)), port_(port) {}

  api::Expected<net::HttpResponse> request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::map<std::string, std::string>& headers = {}) {
    if (!socket_.valid()) {
      auto connected = net::Socket::connect(host_, port_, 2000);
      if (!connected) return connected.status();
      socket_ = std::move(*connected);
    }
    net::HttpRequest req;
    req.method = method;
    req.target = target;
    req.body = body;
    req.headers = headers;
    if (!body.empty()) req.headers["Content-Type"] = "application/json";
    const api::Status sent =
        socket_.write_all(net::serialize_request(req), 5000);
    if (!sent.is_ok()) return sent;

    net::HttpResponseParser parser;
    std::string chunk;
    while (parser.state() == net::HttpResponseParser::State::NeedMore) {
      chunk.clear();
      const long n = socket_.read_some(&chunk, 10000);
      if (n <= 0) {
        socket_ = net::Socket();
        return api::Status::internal("connection lost mid-response");
      }
      parser.feed(chunk);
    }
    if (parser.state() == net::HttpResponseParser::State::Error) {
      socket_ = net::Socket();
      return api::Status::internal("bad response: " + parser.error_detail());
    }
    net::HttpResponse response = parser.response();
    if (response.header("connection") == "close") socket_ = net::Socket();
    return response;
  }

 private:
  std::string host_;
  int port_;
  net::Socket socket_;
};

/// Bounded-retry wrapper around `HttpClient::request`: transport errors
/// (connection refused, connection lost) and `429` responses are retried
/// with exponential backoff plus deterministic jitter; a `Retry-After`
/// header stretches the wait when it asks for more. Any other response —
/// including 4xx/5xx — returns immediately: only *transient* conditions
/// are worth a retry, and a deterministic error would just repeat.
class RetryingClient {
 public:
  RetryingClient(HttpClient& client, std::size_t max_retries,
                 std::size_t backoff_ms)
      : client_(client), max_retries_(max_retries), backoff_ms_(backoff_ms) {}

  api::Expected<net::HttpResponse> request(
      const std::string& method, const std::string& target,
      const std::string& body = "",
      const std::map<std::string, std::string>& headers = {}) {
    for (std::size_t attempt = 0;; ++attempt) {
      auto response = client_.request(method, target, body, headers);
      const bool transient =
          !response.has_value() ||
          (response.has_value() && response->status == 429);
      if (!transient || attempt >= max_retries_) return response;
      double delay_ms = static_cast<double>(backoff_ms_) *
                        std::pow(2.0, static_cast<double>(attempt));
      // Deterministic jitter (0..25%, keyed on the attempt counter):
      // staggers a fleet of identical clients without a shared RNG, and
      // keeps test runs reproducible.
      delay_ms *= 1.0 + 0.25 * static_cast<double>((total_retries_ *
                                                    2654435761ULL) %
                                                   100ULL) /
                            100.0;
      if (response.has_value()) {
        const std::string retry_after(response->header("retry-after"));
        if (!retry_after.empty()) {
          const double server_ms = std::atof(retry_after.c_str()) * 1000.0;
          delay_ms = std::max(delay_ms, server_ms);
        }
      }
      delay_ms = std::min(delay_ms, 5000.0);
      ++total_retries_;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          delay_ms));
    }
  }

  std::uint64_t total_retries() const { return total_retries_; }

 private:
  HttpClient& client_;
  std::size_t max_retries_;
  std::size_t backoff_ms_;
  std::uint64_t total_retries_ = 0;
};

std::string eval_body(const std::string& model,
                      const std::vector<double>& freqs) {
  net::Json item = net::Json::object();
  item.set("model", net::Json(model));
  net::Json list = net::Json::array();
  for (const double f : freqs) list.push_back(net::Json(f));
  item.set("freqs_hz", std::move(list));
  net::Json body = net::Json::object();
  net::Json requests = net::Json::array();
  requests.push_back(std::move(item));
  body.set("requests", std::move(requests));
  return body.dump();
}

#define CHECK(cond, ...)                                  \
  do {                                                    \
    if (!(cond)) {                                        \
      std::fprintf(stderr, "FAIL(%d): ", __LINE__);       \
      std::fprintf(stderr, __VA_ARGS__);                  \
      std::fprintf(stderr, "\n");                         \
      return 1;                                           \
    }                                                     \
  } while (0)

int run_seed(const Args& args) {
  auto registry = serving::ModelRegistry::open(args.dir);
  if (!registry) {
    std::fprintf(stderr, "cannot open registry '%s': %s\n", args.dir.c_str(),
                 registry.status().to_string().c_str());
    return 1;
  }
  for (std::size_t m = 0; m < args.models; ++m) {
    auto handle =
        std::make_shared<const api::ModelHandle>(demo_system(m));
    if (m == 0) {
      const std::string path = args.dir + "/model-0.mfti";
      const api::Status saved = io::save_model_snapshot(path, *handle);
      if (!saved.is_ok()) {
        std::fprintf(stderr, "cannot save %s: %s\n", path.c_str(),
                     saved.to_string().c_str());
        return 1;
      }
    }
    std::string name = "m";
    name += std::to_string(m);
    (*registry)->publish(name, std::move(handle));
  }
  std::printf("seeded %zu model(s) into %s\n", args.models,
              args.dir.c_str());
  return 0;
}

int run_smoke(const Args& args) {
  HttpClient client(args.host, args.port);
  RetryingClient retry(client, args.max_retries, args.backoff_ms);

  // Liveness first: the launcher may race us against server startup.
  api::Expected<net::HttpResponse> health =
      client.request("GET", "/healthz");
  for (int attempt = 0; attempt < 50 && !health; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    health = client.request("GET", "/healthz");
  }
  CHECK(health && health->status == 200, "healthz unreachable");

  // The fleet listing must contain m0.
  auto models = retry.request("GET", "/v1/models");
  CHECK(models && models->status == 200, "GET /v1/models failed");
  auto listing = net::parse_json(models->body);
  CHECK(listing && listing->find("models") != nullptr,
        "models listing is not the expected JSON");
  bool has_m0 = false;
  for (const net::Json& entry : listing->find("models")->items()) {
    const net::Json* name = entry.find("name");
    if (name != nullptr && name->is_string() && name->as_string() == "m0") {
      has_m0 = true;
    }
  }
  CHECK(has_m0, "model m0 missing from /v1/models");

  // Loopback parity: every HTTP-served value must match the in-process
  // evaluation of the same snapshot file to 1e-12. The points repeat once
  // so the second half is answered from the engine's pencil cache — those
  // must match *exactly* (the cache stores the first computation).
  auto reference = io::load_model_snapshot(args.dir + "/model-0.mfti");
  CHECK(reference.has_value(), "cannot load reference snapshot: %s",
        reference.status().to_string().c_str());
  std::vector<double> freqs = demo_freqs(24);
  const std::size_t unique = freqs.size();
  freqs.insert(freqs.end(), freqs.begin(), freqs.end());

  auto evald =
      retry.request("POST", "/v1/eval", eval_body("m0", freqs));
  CHECK(evald && evald->status == 200, "POST /v1/eval failed (status %d)",
        evald ? evald->status : -1);
  auto parsed = net::parse_json(evald->body);
  CHECK(parsed.has_value(), "eval response is not JSON");
  const net::Json* responses = parsed->find("responses");
  CHECK(responses != nullptr && responses->size() == 1,
        "eval response shape");
  const net::Json* values = responses->at(0).find("values");
  CHECK(values != nullptr && values->size() == freqs.size(),
        "want %zu values", freqs.size());
  CHECK(responses->at(0).find("unique_points") != nullptr &&
            responses->at(0).find("unique_points")->as_number() ==
                static_cast<double>(unique),
        "in-batch dedup not applied");

  double worst = 0.0;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const la::CMat ref =
        (*reference)->evaluate(la::Complex(0.0, 2.0 * kPi * freqs[i]));
    const net::Json& value = values->at(i);
    const net::Json* re = value.find("re");
    const net::Json* im = value.find("im");
    CHECK(re != nullptr && im != nullptr &&
              re->size() == ref.rows() * ref.cols(),
        "value %zu has the wrong shape", i);
    for (std::size_t r = 0; r < ref.rows(); ++r) {
      for (std::size_t c = 0; c < ref.cols(); ++c) {
        const std::size_t flat = r * ref.cols() + c;
        const double dre =
            std::abs(re->at(flat).as_number() - ref(r, c).real());
        const double dim =
            std::abs(im->at(flat).as_number() - ref(r, c).imag());
        worst = std::max({worst, dre, dim});
        if (i >= unique) {
          // Cached half: bitwise equality with the first computation,
          // which itself matched `ref` (checked by `worst` below).
          CHECK(dre == 0.0 && dim == 0.0,
                "cached point %zu not exact (dre=%g dim=%g)", i, dre, dim);
        }
      }
    }
  }
  CHECK(worst <= 1e-12, "loopback parity %g > 1e-12", worst);
  std::printf("parity: worst |served - reference| = %g over %zu points\n",
              worst, freqs.size());

  // Error isolation: an unknown model answers 404 without crashing.
  auto missing =
      client.request("POST", "/v1/eval", eval_body("ghost", {10.0}));
  CHECK(missing && missing->status == 404, "unknown model: want 404, got %d",
        missing ? missing->status : -1);

  // Malformed JSON answers 400.
  auto bad = client.request("POST", "/v1/eval", "{not json");
  CHECK(bad && bad->status == 400, "malformed JSON: want 400, got %d",
        bad ? bad->status : -1);

  if (args.expect_429) {
    // Burst past the configured token bucket; at least one refusal with a
    // Retry-After header must show up. Deliberately bypasses the retry
    // layer — retrying-with-backoff would wait out the bucket and hide
    // the very refusal this asserts.
    bool saw_429 = false;
    for (int i = 0; i < 32 && !saw_429; ++i) {
      auto burst = client.request("POST", "/v1/eval",
                                  eval_body("m0", {10.0}),
                                  {{"X-API-Key", "burster"}});
      CHECK(burst.has_value(), "burst request failed");
      if (burst->status == 429) {
        CHECK(!burst->header("retry-after").empty(),
              "429 without Retry-After");
        saw_429 = true;
      }
    }
    CHECK(saw_429, "rate limit never refused a 32-request burst");
    std::printf("rate limit: observed 429 with Retry-After\n");
  }

  std::printf("smoke: all checks passed\n");
  return 0;
}

int run_bench(const Args& args) {
  HttpClient client(args.host, args.port);
  RetryingClient retry(client, args.max_retries, args.backoff_ms);
  const std::vector<double> freqs = demo_freqs(32);
  const std::string body = eval_body("m0", freqs);

  // Warmup fills the server-side pencil cache.
  for (int i = 0; i < 3; ++i) {
    auto r = retry.request("POST", "/v1/eval", body);
    if (!r || r->status != 200) {
      std::fprintf(stderr, "bench warmup failed\n");
      return 1;
    }
  }

  std::vector<double> seconds;
  seconds.reserve(args.rounds);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < args.rounds; ++i) {
    const auto a = std::chrono::steady_clock::now();
    auto r = retry.request("POST", "/v1/eval", body);
    if (!r || r->status != 200) {
      std::fprintf(stderr, "bench round %zu failed\n", i);
      return 1;
    }
    const auto b = std::chrono::steady_clock::now();
    seconds.push_back(std::chrono::duration<double>(b - a).count());
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::sort(seconds.begin(), seconds.end());
  const auto quantile = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(seconds.size() - 1));
    return seconds[idx];
  };
  const double p50 = quantile(0.5);
  const double p90 = quantile(0.9);
  const double p99 = quantile(0.99);
  const double rps = static_cast<double>(args.rounds) / wall;
  std::printf("bench: %zu rounds, %zu points/req: p50 %.3gms p90 %.3gms "
              "p99 %.3gms (%.0f req/s, %llu retries)\n",
              args.rounds, freqs.size(), p50 * 1e3, p90 * 1e3, p99 * 1e3,
              rps, static_cast<unsigned long long>(retry.total_retries()));

  if (!args.json_path.empty()) {
    std::FILE* f = std::fopen(args.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    // "seconds" stays the p50 (the field every baseline already carries);
    // the explicit percentile fields ride along so compare_bench.py can
    // surface tail latency without schema archaeology.
    std::fprintf(f,
                 "{\n  \"bench\": \"model_serving_http\",\n"
                 "  \"metrics\": [\n"
                 "    {\"name\": \"eval_roundtrip\", \"seconds\": %.12g, "
                 "\"p50_seconds\": %.12g, \"p90_seconds\": %.12g, "
                 "\"p99_seconds\": %.12g, \"requests_per_second\": %.12g, "
                 "\"points\": %zu, \"retries\": %llu}\n  ]\n}\n",
                 p50, p50, p90, p99, rps, freqs.size(),
                 static_cast<unsigned long long>(retry.total_retries()));
    std::fclose(f);
    std::printf("[json] wrote %s\n", args.json_path.c_str());
  }
  return 0;
}

/// End-to-end drive of the request-tracing path: send a traced eval
/// (client-chosen `X-Request-Id`, `X-MFTI-Trace: 1`), assert the id is
/// echoed and the response carries a per-stage "timings" block, then —
/// when an admin token is available — scrape `GET /v1/admin/trace` and
/// assert the trace landed in the ring with the span stages the serving
/// path must produce (queue, lookup, factorize-or-cache-hit, solve).
int run_trace(const Args& args) {
  HttpClient client(args.host, args.port);
  RetryingClient retry(client, args.max_retries, args.backoff_ms);

  api::Expected<net::HttpResponse> health =
      client.request("GET", "/healthz");
  for (int attempt = 0; attempt < 50 && !health; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    health = client.request("GET", "/healthz");
  }
  CHECK(health && health->status == 200, "healthz unreachable");

  const std::string request_id = "trace-ci-0042";
  const std::map<std::string, std::string> trace_headers = {
      {"X-Request-Id", request_id}, {"X-MFTI-Trace", "1"}};

  auto traced = retry.request("POST", "/v1/eval",
                              eval_body("m0", demo_freqs(16)),
                              trace_headers);
  CHECK(traced && traced->status == 200, "traced eval failed (status %d)",
        traced ? traced->status : -1);
  CHECK(std::string(traced->header("x-request-id")) == request_id,
        "X-Request-Id not echoed (got '%s')",
        std::string(traced->header("x-request-id")).c_str());
  auto parsed = net::parse_json(traced->body);
  CHECK(parsed.has_value(), "traced eval response is not JSON");
  const net::Json* timings = parsed->find("timings");
  CHECK(timings != nullptr, "no 'timings' block despite X-MFTI-Trace: 1");
  const net::Json* timing_id = timings->find("id");
  CHECK(timing_id != nullptr && timing_id->is_string() &&
            timing_id->as_string() == request_id,
        "timings block id mismatch");
  const net::Json* stages = timings->find("stages");
  CHECK(stages != nullptr, "timings block lacks 'stages'");
  CHECK(stages->find("solve") != nullptr ||
            stages->find("factorize") != nullptr ||
            stages->find("cache_hit") != nullptr,
        "timings block has no engine stage");
  std::printf("trace: id echoed, timings block present\n");

  if (args.admin_token.empty()) {
    std::printf("trace: no admin token, skipping /v1/admin/trace scrape\n");
    return 0;
  }
  const std::map<std::string, std::string> admin = {
      {"X-Admin-Token", args.admin_token}};
  auto listing = retry.request("GET", "/v1/admin/trace", "", admin);
  CHECK(listing && listing->status == 200,
        "GET /v1/admin/trace failed (status %d)",
        listing ? listing->status : -1);
  auto listing_json = net::parse_json(listing->body);
  CHECK(listing_json.has_value(), "trace listing is not JSON");
  const net::Json* recent = listing_json->find("recent");
  CHECK(recent != nullptr && recent->size() > 0, "trace ring is empty");
  const net::Json* ours = nullptr;
  for (const net::Json& entry : recent->items()) {
    const net::Json* id = entry.find("id");
    if (id != nullptr && id->is_string() &&
        id->as_string() == request_id) {
      ours = &entry;
    }
  }
  CHECK(ours != nullptr, "trace '%s' not in the ring", request_id.c_str());
  const net::Json* spans = ours->find("spans");
  CHECK(spans != nullptr && spans->size() > 0, "trace has no spans");
  bool saw_queue = false;
  bool saw_lookup = false;
  bool saw_compute = false;  // factorize or cache_hit
  bool saw_solve = false;
  for (const net::Json& span : spans->items()) {
    const net::Json* stage = span.find("stage");
    if (stage == nullptr || !stage->is_string()) continue;
    const std::string& name = stage->as_string();
    if (name == "queue") saw_queue = true;
    if (name == "lookup") saw_lookup = true;
    if (name == "factorize" || name == "cache_hit") saw_compute = true;
    if (name == "solve") saw_solve = true;
  }
  CHECK(saw_queue, "trace lacks a 'queue' span");
  CHECK(saw_lookup, "trace lacks a 'lookup' span");
  CHECK(saw_compute, "trace lacks a 'factorize'/'cache_hit' span");
  CHECK(saw_solve, "trace lacks a 'solve' span");
  std::printf("trace: ring has '%s' with queue/lookup/compute/solve "
              "spans — all checks passed\n",
              request_id.c_str());
  return 0;
}

/// End-to-end drive of the verification gate (server must run with
/// `MFTI_VERIFY=1` and an admin token). Asserts the quarantine lifecycle:
/// refused publish is never servable, promote is re-verified, force wins,
/// discard drops.
int run_quarantine(const Args& args) {
  CHECK(!args.admin_token.empty(),
        "quarantine mode needs --admin-token or $MFTI_HTTP_ADMIN_TOKEN");
  HttpClient client(args.host, args.port);
  RetryingClient retry(client, args.max_retries, args.backoff_ms);
  const std::map<std::string, std::string> admin = {
      {"X-Admin-Token", args.admin_token}};

  // Wait out server startup.
  api::Expected<net::HttpResponse> health =
      client.request("GET", "/healthz");
  for (int attempt = 0; attempt < 50 && !health; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    health = client.request("GET", "/healthz");
  }
  CHECK(health && health->status == 200, "healthz unreachable");

  // A deliberately non-passive model: scaling C inflates sigma_max(H)
  // far past 1 without touching the (stable) pencil eigenvalues.
  ss::DescriptorSystem bad = demo_system(0);
  for (std::size_t r = 0; r < bad.c.rows(); ++r) {
    for (std::size_t c = 0; c < bad.c.cols(); ++c) {
      bad.c(r, c) *= 100.0;
    }
  }
  const std::string snapshot_path = args.dir + "/nonpassive.mfti";
  const api::ModelHandle bad_handle(bad);
  const api::Status saved = io::save_model_snapshot(snapshot_path, bad_handle);
  CHECK(saved.is_ok(), "cannot save %s: %s", snapshot_path.c_str(),
        saved.to_string().c_str());

  const auto publish_body = [&snapshot_path](const std::string& name) {
    net::Json body = net::Json::object();
    body.set("name", net::Json(name));
    body.set("snapshot", net::Json(snapshot_path));
    return body.dump();
  };

  // 1. Publish → the gate must quarantine it.
  auto published = retry.request("POST", "/v1/admin/publish",
                                 publish_body("q0"), admin);
  CHECK(published && published->status == 200,
        "admin publish failed (status %d)",
        published ? published->status : -1);
  auto publish_json = net::parse_json(published->body);
  CHECK(publish_json.has_value(), "publish response is not JSON");
  const net::Json* quarantined_flag = publish_json->find("quarantined");
  CHECK(quarantined_flag != nullptr && quarantined_flag->is_bool() &&
            quarantined_flag->as_bool(),
        "non-passive publish was NOT quarantined");
  const net::Json* version_field = publish_json->find("version");
  CHECK(version_field != nullptr, "publish response lacks 'version'");
  const std::uint64_t version =
      static_cast<std::uint64_t>(version_field->as_number());

  // 2. Never observable via eval: 404, not the quarantined model.
  auto ghost = retry.request("POST", "/v1/eval", eval_body("q0", {100.0}));
  CHECK(ghost && ghost->status == 404,
        "quarantined model answered eval with %d (want 404)",
        ghost ? ghost->status : -1);

  // 3. Listed by the admin API, with the failed report attached.
  auto listing = retry.request("GET", "/v1/admin/quarantine", "", admin);
  CHECK(listing && listing->status == 200, "quarantine listing failed");
  auto listing_json = net::parse_json(listing->body);
  CHECK(listing_json.has_value(), "quarantine listing is not JSON");
  const net::Json* entries = listing_json->find("quarantined");
  CHECK(entries != nullptr && entries->size() == 1,
        "want exactly one quarantined version");
  const net::Json* report = entries->at(0).find("report");
  CHECK(report != nullptr && report->find("passed") != nullptr &&
            !report->find("passed")->as_bool(),
        "quarantine report should say passed=false");

  // 4. Unforced promote re-verifies and must refuse (422).
  const std::string action_base =
      "/v1/admin/quarantine/q0/" + std::to_string(version);
  auto refused =
      retry.request("POST", action_base + "/promote", "", admin);
  CHECK(refused && refused->status == 422,
        "unforced promote of a non-passive model: want 422, got %d",
        refused ? refused->status : -1);
  auto still_ghost =
      retry.request("POST", "/v1/eval", eval_body("q0", {100.0}));
  CHECK(still_ghost && still_ghost->status == 404,
        "refused promote leaked the model into serving");

  // 5. Forced promote goes live; eval serves it.
  auto forced = retry.request("POST", action_base + "/promote",
                              "{\"force\": true}", admin);
  CHECK(forced && forced->status == 200, "forced promote failed (%d)",
        forced ? forced->status : -1);
  auto served = retry.request("POST", "/v1/eval", eval_body("q0", {100.0}));
  CHECK(served && served->status == 200,
        "promoted model not serving (%d)", served ? served->status : -1);

  // 6. Second copy: quarantine again, then discard.
  auto again = retry.request("POST", "/v1/admin/publish",
                             publish_body("q0"), admin);
  CHECK(again && again->status == 200, "second publish failed");
  auto again_json = net::parse_json(again->body);
  CHECK(again_json && again_json->find("quarantined") != nullptr &&
            again_json->find("quarantined")->as_bool(),
        "second publish not quarantined");
  const std::uint64_t version2 = static_cast<std::uint64_t>(
      again_json->find("version")->as_number());
  CHECK(version2 > version, "quarantine version did not advance");
  auto discarded = retry.request(
      "POST",
      "/v1/admin/quarantine/q0/" + std::to_string(version2) + "/discard",
      "", admin);
  CHECK(discarded && discarded->status == 200, "discard failed (%d)",
        discarded ? discarded->status : -1);
  auto empty = retry.request("GET", "/v1/admin/quarantine", "", admin);
  CHECK(empty && empty->status == 200, "final listing failed");
  auto empty_json = net::parse_json(empty->body);
  CHECK(empty_json && empty_json->find("quarantined") != nullptr &&
            empty_json->find("quarantined")->size() == 0,
        "quarantine should be empty after promote + discard");
  // The discarded version never replaced the promoted one.
  auto final_eval =
      retry.request("POST", "/v1/eval", eval_body("q0", {100.0}));
  CHECK(final_eval && final_eval->status == 200,
        "live model lost after discard");

  std::printf("quarantine: all checks passed (quarantined v%llu, "
              "force-promoted, discarded v%llu)\n",
              static_cast<unsigned long long>(version),
              static_cast<unsigned long long>(version2));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.valid) return usage();
  if (args.mode == "seed") {
    if (args.dir.empty()) return usage();
    return run_seed(args);
  }
  if (args.mode == "smoke") {
    if (args.dir.empty() || args.port == 0) return usage();
    return run_smoke(args);
  }
  if (args.mode == "bench") {
    if (args.port == 0) return usage();
    return run_bench(args);
  }
  if (args.mode == "quarantine") {
    if (args.dir.empty() || args.port == 0) return usage();
    return run_quarantine(args);
  }
  if (args.mode == "trace") {
    if (args.port == 0) return usage();
    return run_trace(args);
  }
  return usage();
}
