/// \file bench_common.hpp
/// \brief Shared fixtures for the paper-reproduction benches: the Example-1
/// ground-truth system (order-150, 30 ports, full-rank D) and the Example-2
/// synthetic PDN data sets, plus small output helpers.

#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/csv.hpp"
#include "loewner/realization.hpp"
#include "netgen/mna.hpp"
#include "netgen/pdn.hpp"
#include "sampling/dataset.hpp"
#include "sampling/grid.hpp"
#include "sampling/noise.hpp"
#include "sampling/sampler.hpp"
#include "statespace/random_system.hpp"

namespace mfti::bench {

/// Example 1 of the paper: "an order-150 system with 30 ports". The paper
/// does not publish the system; DESIGN.md §5 documents this substitute.
/// rank(D) = 30 is required for the Fig. 1 drop positions (150 / 180 / 180).
inline ss::DescriptorSystem example1_system(std::uint64_t seed = 20100613) {
  la::Rng rng(seed);
  ss::RandomSystemOptions opts;
  opts.order = 150;
  opts.num_outputs = 30;
  opts.num_inputs = 30;
  opts.rank_d = 30;
  opts.f_min_hz = 10.0;
  opts.f_max_hz = 1e5;
  return ss::random_stable_mimo(opts, rng);
}

/// Example 1 sampling band.
inline constexpr double kExample1FMin = 10.0;
inline constexpr double kExample1FMax = 1e5;

/// Example 2 of the paper: measured 14-port PDN data (proprietary),
/// substituted by the synthetic PDN of netgen (DESIGN.md §5).
inline netgen::Circuit example2_pdn_circuit(std::uint64_t seed = 20100614) {
  la::Rng rng(seed);
  netgen::PdnOptions opts;  // 6x6 grid, 6 decaps, 14 ports
  return netgen::make_pdn_circuit(opts, rng);
}

/// LTI (rational) view of the same PDN, for poles/diagnostics.
inline ss::DescriptorSystem example2_pdn(std::uint64_t seed = 20100614) {
  return example2_pdn_circuit(seed).build_impedance_system();
}

/// Example 2 band (board-level PDN).
inline constexpr double kPdnFMin = 1e6;
inline constexpr double kPdnFMax = 1e9;

/// Measurement noise injected into the "measured" PDN data: -60 dB relative
/// per entry, the accuracy class of a calibrated VNA. (The paper's data is
/// real measurements whose noise level is not stated.)
inline constexpr double kPdnNoise = 1e-3;

/// Skin-effect onset: conductor losses grow as sqrt(f) above ~10 MHz, so
/// the sampled response is not exactly rational — like the measured data
/// the paper's Example 2 uses.
inline constexpr double kPdnSkinHz = 1e7;

/// Test 1 of Table 1: 100 uniformly distributed samples + noise.
inline sampling::SampleSet table1_test1_data(const netgen::Circuit& pdn,
                                             std::uint64_t noise_seed = 7) {
  auto data = netgen::sample_s_parameters(
      pdn, sampling::linear_grid(kPdnFMin, kPdnFMax, 100), 50.0, kPdnSkinHz);
  la::Rng rng(noise_seed);
  return sampling::add_noise(data, kPdnNoise, rng);
}

/// Test 2 of Table 1: 100 poorly distributed samples concentrated in the
/// high-frequency band (only ~2 samples below 200 MHz) + noise.
inline sampling::SampleSet table1_test2_data(const netgen::Circuit& pdn,
                                             std::uint64_t noise_seed = 8) {
  auto data = netgen::sample_s_parameters(
      pdn, sampling::clustered_high_grid(kPdnFMin, kPdnFMax, 100, 0.4), 50.0,
      kPdnSkinHz);
  la::Rng rng(noise_seed);
  return sampling::add_noise(data, kPdnNoise, rng);
}

/// Order selection used by all Loewner-based rows of Table 1: truncate at
/// the -40 dB singular-value floor (10x the injected noise), the knee where
/// the data stops carrying system information.
inline loewner::RealizationOptions table1_realization() {
  loewner::RealizationOptions opts;
  opts.selection = loewner::OrderSelection::Tolerance;
  opts.rank_tol = 1e-2;
  return opts;
}

/// Write a CSV next to the binary under bench_out/ (best effort: failures
/// to create the directory only disable the CSV, never the bench).
inline void write_csv(const io::CsvTable& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return;
  try {
    table.write_file("bench_out/" + name);
    std::printf("[csv] wrote bench_out/%s\n", name.c_str());
  } catch (const std::exception&) {
    // Output directory not writable; stdout already has the numbers.
  }
}

}  // namespace mfti::bench
