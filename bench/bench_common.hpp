/// \file bench_common.hpp
/// \brief Shared fixtures for the paper-reproduction benches: the Example-1
/// ground-truth system (order-150, 30 ports, full-rank D) and the Example-2
/// synthetic PDN data sets, plus small output helpers.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "io/csv.hpp"
#include "linalg/matrix.hpp"
#include "loewner/realization.hpp"
#include "metrics/stopwatch.hpp"
#include "netgen/mna.hpp"
#include "netgen/pdn.hpp"
#include "sampling/dataset.hpp"
#include "sampling/grid.hpp"
#include "sampling/noise.hpp"
#include "sampling/sampler.hpp"
#include "statespace/random_system.hpp"

namespace mfti::bench {

/// Example 1 of the paper: "an order-150 system with 30 ports". The paper
/// does not publish the system; DESIGN.md §5 documents this substitute.
/// rank(D) = 30 is required for the Fig. 1 drop positions (150 / 180 / 180).
inline ss::DescriptorSystem example1_system(std::uint64_t seed = 20100613) {
  la::Rng rng(seed);
  ss::RandomSystemOptions opts;
  opts.order = 150;
  opts.num_outputs = 30;
  opts.num_inputs = 30;
  opts.rank_d = 30;
  opts.f_min_hz = 10.0;
  opts.f_max_hz = 1e5;
  return ss::random_stable_mimo(opts, rng);
}

/// Example 1 sampling band.
inline constexpr double kExample1FMin = 10.0;
inline constexpr double kExample1FMax = 1e5;

/// Example 2 of the paper: measured 14-port PDN data (proprietary),
/// substituted by the synthetic PDN of netgen (DESIGN.md §5).
inline netgen::Circuit example2_pdn_circuit(std::uint64_t seed = 20100614) {
  la::Rng rng(seed);
  netgen::PdnOptions opts;  // 6x6 grid, 6 decaps, 14 ports
  return netgen::make_pdn_circuit(opts, rng);
}

/// LTI (rational) view of the same PDN, for poles/diagnostics.
inline ss::DescriptorSystem example2_pdn(std::uint64_t seed = 20100614) {
  return example2_pdn_circuit(seed).build_impedance_system();
}

/// Example 2 band (board-level PDN).
inline constexpr double kPdnFMin = 1e6;
inline constexpr double kPdnFMax = 1e9;

/// Measurement noise injected into the "measured" PDN data: -60 dB relative
/// per entry, the accuracy class of a calibrated VNA. (The paper's data is
/// real measurements whose noise level is not stated.)
inline constexpr double kPdnNoise = 1e-3;

/// Skin-effect onset: conductor losses grow as sqrt(f) above ~10 MHz, so
/// the sampled response is not exactly rational — like the measured data
/// the paper's Example 2 uses.
inline constexpr double kPdnSkinHz = 1e7;

/// Test 1 of Table 1: 100 uniformly distributed samples + noise.
inline sampling::SampleSet table1_test1_data(const netgen::Circuit& pdn,
                                             std::uint64_t noise_seed = 7) {
  auto data = netgen::sample_s_parameters(
      pdn, sampling::linear_grid(kPdnFMin, kPdnFMax, 100), 50.0, kPdnSkinHz);
  la::Rng rng(noise_seed);
  return sampling::add_noise(data, kPdnNoise, rng);
}

/// Test 2 of Table 1: 100 poorly distributed samples concentrated in the
/// high-frequency band (only ~2 samples below 200 MHz) + noise.
inline sampling::SampleSet table1_test2_data(const netgen::Circuit& pdn,
                                             std::uint64_t noise_seed = 8) {
  auto data = netgen::sample_s_parameters(
      pdn, sampling::clustered_high_grid(kPdnFMin, kPdnFMax, 100, 0.4), 50.0,
      kPdnSkinHz);
  la::Rng rng(noise_seed);
  return sampling::add_noise(data, kPdnNoise, rng);
}

/// Order selection used by all Loewner-based rows of Table 1: truncate at
/// the -40 dB singular-value floor (10x the injected noise), the knee where
/// the data stops carrying system information.
inline loewner::RealizationOptions table1_realization() {
  loewner::RealizationOptions opts;
  opts.selection = loewner::OrderSelection::Tolerance;
  opts.rank_tol = 1e-2;
  return opts;
}

// --- shared measurement helpers ---------------------------------------------

/// Best-of-`repeats` wall time of `body` in seconds (the standard timing
/// discipline of the perf benches; change it here, not per-bench).
template <typename F>
double best_seconds(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    metrics::Stopwatch sw;
    body();
    best = std::min(best, sw.seconds());
  }
  return best;
}

/// Largest entry-wise |a - b| between two same-shape matrices.
template <typename T>
double max_diff(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, la::detail::abs_value(a(i, j) - b(i, j)));
  return m;
}

// --- machine-readable benchmark output (CI perf trajectory) -----------------

/// Command-line arguments shared by the perf benches: positional arguments
/// plus an optional `--json <path>` pair anywhere on the line. Positional
/// parsing in the benches is unaffected by the flag's presence. A trailing
/// `--json` without a path is a usage error (reported on stderr and marked
/// invalid so benches can exit non-zero instead of misparsing).
struct BenchArgs {
  std::vector<std::string> positional;
  std::string json_path;  // empty: no JSON output requested
  bool valid = true;

  /// First positional argument as a positive integer, or `fallback` when
  /// absent; malformed values flag the args invalid.
  int positional_int(int fallback) {
    if (positional.empty()) return fallback;
    char* end = nullptr;
    const long value = std::strtol(positional.front().c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value <= 0) {
      std::fprintf(stderr, "bad positional argument '%s' (want a positive "
                   "integer)\n", positional.front().c_str());
      valid = false;
      return fallback;
    }
    return static_cast<int>(value);
  }
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 < argc) {
        out.json_path = argv[++i];
      } else {
        std::fprintf(stderr, "--json needs a path argument\n");
        out.valid = false;
      }
    } else {
      out.positional.push_back(arg);
    }
  }
  return out;
}

/// Collects named metrics (each a set of numeric fields) and writes them as
/// the one-benchmark JSON document consumed by bench/compare_bench.py:
///
///   {"bench": "<name>",
///    "metrics": [{"name": "...", "seconds": 1.25e-3, ...}, ...]}
///
/// Nonfinite values are emitted as null so the document always stays valid
/// JSON.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void add(const std::string& name,
           std::initializer_list<std::pair<const char*, double>> fields) {
    Metric m;
    m.name = name;
    m.fields.assign(fields.begin(), fields.end());
    metrics_.push_back(std::move(m));
  }

  /// Write the document to `path`; "" is a no-op. Returns false (after
  /// printing a diagnostic) when the file cannot be written.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[json] cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
          << metrics_[i].name << "\"";
      for (const auto& [key, value] : metrics_[i].fields) {
        out << ", \"" << key << "\": ";
        if (std::isfinite(value)) {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.12g", value);
          out << buf;
        } else {
          out << "null";
        }
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "[json] write to %s failed\n", path.c_str());
      return false;
    }
    std::printf("[json] wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Metric {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string bench_;
  std::vector<Metric> metrics_;
};

/// Write a CSV next to the binary under bench_out/ (best effort: failures
/// to create the directory only disable the CSV, never the bench).
inline void write_csv(const io::CsvTable& table, const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (ec) return;
  try {
    table.write_file("bench_out/" + name);
    std::printf("[csv] wrote bench_out/%s\n", name.c_str());
  } catch (const std::exception&) {
    // Output directory not writable; stdout already has the numbers.
  }
}

}  // namespace mfti::bench
