// Reproduces Table 1 of the paper: interpolation of noisy data on a
// 14-port power distribution network.
//
//   Test 1: 100 uniformly distributed frequency samples, -60 dB noise.
//   Test 2: 100 poorly distributed samples concentrated in the
//           high-frequency band, -60 dB noise.
//
// Rows: VF (10 iterations, n = 140 / 280), VFTI, MFTI-1 (t = 2 / 3),
// MFTI-2 (recursive). Columns: reduced order, CPU time (s), relative error
// ERR = ||err||_2 / sqrt(k) with err_i = ||H(j2pi f_i)-S(f_i)||_2 /
// ||S(f_i)||_2, evaluated on the same noisy samples (as in the paper).
//
// The measured data of the paper (INC-board PDN, [10]) is proprietary;
// DESIGN.md §5 documents the synthetic PDN substitute. Absolute numbers
// therefore differ; the qualitative ordering is the reproduction target.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "core/recursive_mfti.hpp"
#include "metrics/error.hpp"
#include "metrics/stopwatch.hpp"
#include "vf/vector_fitting.hpp"
#include "vfti/vfti.hpp"

namespace {

using namespace mfti;

struct Row {
  std::string name;
  std::size_t order;
  double seconds;
  double err;
};

Row run_vf(const sampling::SampleSet& data, std::size_t n) {
  vf::VectorFittingOptions opts;
  opts.num_poles = n;
  opts.iterations = 10;
  metrics::Stopwatch sw;
  const vf::VectorFittingResult res = vf::vector_fit(data, opts);
  const double t = sw.seconds();
  return {"VF(10 it) n=" + std::to_string(n), res.order, t,
          vf::model_error(res.model, data)};
}

Row run_vfti(const sampling::SampleSet& data) {
  vfti::VftiOptions opts;
  opts.realization = bench::table1_realization();
  metrics::Stopwatch sw;
  const vfti::VftiResult res = vfti::vfti_fit(data, opts);
  const double t = sw.seconds();
  return {"VFTI", res.order, t, metrics::model_error(res.model, data)};
}

Row run_mfti1(const sampling::SampleSet& data, std::size_t t_width) {
  core::MftiOptions opts;
  opts.data.uniform_t = t_width;
  opts.realization = bench::table1_realization();
  metrics::Stopwatch sw;
  const core::MftiResult res = core::mfti_fit(data, opts);
  const double t = sw.seconds();
  return {"MFTI-1 t=" + std::to_string(t_width), res.order, t,
          metrics::model_error(res.model, data)};
}

Row run_mfti2(const sampling::SampleSet& data) {
  core::RecursiveMftiOptions opts;
  opts.data.uniform_t = 2;
  opts.units_per_iteration = 5;
  // Scale-free stopping rule (EXPERIMENTS.md discusses this deviation from
  // the paper's absolute-error sort): stop when the remaining samples are
  // tangentially matched to 5%.
  opts.relative_error = true;
  opts.selection = core::SelectionRule::WorstFirst;
  opts.threshold = 0.05;
  opts.realization = bench::table1_realization();
  metrics::Stopwatch sw;
  const core::RecursiveMftiResult res = core::recursive_mfti_fit(data, opts);
  const double t = sw.seconds();
  return {"MFTI-2 (recursive)", res.order, t,
          metrics::model_error(res.model, data)};
}

void run_test(const char* title, const sampling::SampleSet& data,
              io::CsvTable& csv, double test_id) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-22s  %14s  %10s  %14s\n", "algorithm", "reduced order",
              "time (s)", "relative error");
  std::vector<Row> rows;
  rows.push_back(run_vf(data, 140));
  rows.push_back(run_vf(data, 280));
  rows.push_back(run_vfti(data));
  rows.push_back(run_mfti1(data, 2));
  rows.push_back(run_mfti1(data, 3));
  rows.push_back(run_mfti2(data));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%-22s  %14zu  %10.4f  %14.3e\n", r.name.c_str(), r.order,
                r.seconds, r.err);
    csv.add_row({test_id, static_cast<double>(i),
                 static_cast<double>(r.order), r.seconds, r.err});
  }
}

}  // namespace

int main() {
  std::printf("=== Table 1: interpolation of noisy data (14-port PDN) ===\n");
  const netgen::Circuit pdn = bench::example2_pdn_circuit();
  std::printf("synthetic PDN: LTI order %zu, %zu ports, band %.0e..%.0e Hz, "
              "skin-effect losses above %.0e Hz, -60 dB measurement noise\n",
              bench::example2_pdn().order(), pdn.num_ports(),
              bench::kPdnFMin, bench::kPdnFMax, bench::kPdnSkinHz);

  io::CsvTable csv({"test", "row", "reduced_order", "time_s", "err"});
  run_test("Test 1: 100 uniform samples", bench::table1_test1_data(pdn), csv,
           1.0);
  run_test("Test 2: 100 samples clustered at high frequency",
           bench::table1_test2_data(pdn), csv, 2.0);
  bench::write_csv(csv, "table1.csv");

  std::printf(
      "\nPaper expectation (qualitative): MFTI-1 most accurate (t=3 better "
      "than t=2),\nMFTI-2 close behind at lower order and near-VFTI run "
      "time, VFTI less accurate\n(especially on Test 2), VF slowest and "
      "less accurate than MFTI.\n");
  return 0;
}
