// Scaling bench for the parallel execution layer: times the two MFTI hot
// paths — block Loewner pencil assembly and batch frequency-response sweeps
// — under the serial policy and under thread counts 2/4/max, and verifies
// that every parallel result matches the serial one element-wise within
// 1e-12. On a >= 4-core host the parallel columns should show >= 2x speedup;
// on fewer cores the bench still validates correctness and reports honestly.
//
// Usage: bench_parallel_scaling [repeats]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/csv.hpp"
#include "loewner/matrices.hpp"
#include "loewner/tangential.hpp"
#include "metrics/stopwatch.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/grid.hpp"
#include "sampling/sampler.hpp"
#include "statespace/response.hpp"

namespace la = mfti::la;
namespace lw = mfti::loewner;
namespace par = mfti::parallel;
namespace sp = mfti::sampling;
namespace ss = mfti::ss;
namespace bench = mfti::bench;

namespace {

template <typename F>
double best_seconds(int repeats, F&& body) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    mfti::metrics::Stopwatch sw;
    body();
    best = std::min(best, sw.seconds());
  }
  return best;
}

double max_cdiff(const la::CMat& a, const la::CMat& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

struct Row {
  std::string kernel;
  std::size_t threads;
  double seconds;
  double speedup;
  double max_diff;
};

}  // namespace

int main(int argc, char** argv) {
  const int repeats = std::max(1, argc > 1 ? std::atoi(argv[1]) : 3);
  const std::size_t hw = par::hardware_threads();
  std::printf("parallel_scaling: %zu hardware thread(s), best of %d runs\n\n",
              hw, repeats);

  // Fixture: the paper's Example-1 class of problem (order 150, 30 ports)
  // sampled densely enough that the pencil is a few hundred rows/columns.
  const ss::DescriptorSystem sys = bench::example1_system();
  const auto samples = sp::sample_system(
      sys, sp::log_grid(bench::kExample1FMin, bench::kExample1FMax, 40));
  const lw::TangentialData data = lw::build_tangential_data(samples);
  std::printf("Loewner pencil: %zu x %zu (30-port, t = 30 blocks)\n",
              data.left_height(), data.right_width());

  const std::vector<double> sweep_freqs =
      sp::log_grid(bench::kExample1FMin, bench::kExample1FMax, 256);
  std::printf("frequency sweep: %zu points, order-%zu model\n\n",
              sweep_freqs.size(), sys.order());

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<Row> rows;

  // --- Loewner pencil assembly ---------------------------------------------
  const auto [ll_ref, sll_ref] = lw::loewner_pair(data);
  double serial_loewner = 0.0;
  for (std::size_t t : thread_counts) {
    const auto exec = t == 1 ? par::ExecutionPolicy::serial()
                             : par::ExecutionPolicy::with_threads(t);
    la::CMat ll, sll;
    const double s = best_seconds(repeats, [&] {
      auto pair = lw::loewner_pair(data, exec);
      ll = std::move(pair.first);
      sll = std::move(pair.second);
    });
    if (t == 1) serial_loewner = s;
    rows.push_back({"loewner_pair", t, s, serial_loewner / s,
                    std::max(max_cdiff(ll, ll_ref), max_cdiff(sll, sll_ref))});
  }

  // --- batch frequency sweep -----------------------------------------------
  const ss::BatchEvaluator eval(sys);
  const auto sweep_ref = eval.sweep(sweep_freqs);
  double serial_sweep = 0.0;
  for (std::size_t t : thread_counts) {
    const auto exec = t == 1 ? par::ExecutionPolicy::serial()
                             : par::ExecutionPolicy::with_threads(t);
    std::vector<la::CMat> h;
    const double s =
        best_seconds(repeats, [&] { h = eval.sweep(sweep_freqs, exec); });
    if (t == 1) serial_sweep = s;
    double diff = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i)
      diff = std::max(diff, max_cdiff(h[i], sweep_ref[i]));
    rows.push_back({"batch_sweep", t, s, serial_sweep / s, diff});
  }

  // --- report ---------------------------------------------------------------
  std::printf("%-14s %8s %12s %9s %12s\n", "kernel", "threads", "seconds",
              "speedup", "max |diff|");
  bool ok = true;
  for (const Row& r : rows) {
    std::printf("%-14s %8zu %12.4f %8.2fx %12.3e\n", r.kernel.c_str(),
                r.threads, r.seconds, r.speedup, r.max_diff);
    ok = ok && r.max_diff <= 1e-12;
  }
  std::printf("\ncorrectness (all parallel == serial within 1e-12): %s\n",
              ok ? "PASS" : "FAIL");
  if (hw < 4) {
    std::printf(
        "note: only %zu hardware thread(s) available — speedups are not "
        "meaningful on this host (need >= 4 cores for the 2x target)\n",
        hw);
  }

  // CSV: kernel encoded as 0 = loewner_pair, 1 = batch_sweep.
  mfti::io::CsvTable csv({"kernel", "threads", "seconds", "speedup",
                          "max_diff"});
  for (const Row& r : rows) {
    csv.add_row({r.kernel == "loewner_pair" ? 0.0 : 1.0,
                 static_cast<double>(r.threads), r.seconds, r.speedup,
                 r.max_diff});
  }
  bench::write_csv(csv, "parallel_scaling.csv");
  return ok ? 0 : 1;
}
