// Scaling bench for the parallel execution layer: times the MFTI hot paths
// — block Loewner pencil assembly, batch frequency-response sweeps, and the
// dense O(n^3) kernels (blocked GEMM, LU, eigensolver, Jacobi SVD) — under
// the serial policy and under thread counts 2/4/max, and verifies that
// every parallel result matches the serial one element-wise within 1e-12
// (bitwise in practice). On a >= 4-core host the parallel columns should
// show >= 2x speedup; on fewer cores the bench still validates correctness
// and reports honestly. The CI perf job gates on the 4-thread speedup
// reported here (see bench/compare_bench.py).
//
// Usage: bench_parallel_scaling [repeats] [--json <path>]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/csv.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/multiply.hpp"
#include "linalg/random.hpp"
#include "linalg/svd.hpp"
#include "loewner/matrices.hpp"
#include "loewner/tangential.hpp"
#include "metrics/stopwatch.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/grid.hpp"
#include "sampling/sampler.hpp"
#include "statespace/response.hpp"

namespace la = mfti::la;
namespace lw = mfti::loewner;
namespace par = mfti::parallel;
namespace sp = mfti::sampling;
namespace ss = mfti::ss;
namespace bench = mfti::bench;

namespace {

using bench::best_seconds;
using bench::max_diff;

struct Row {
  std::string kernel;
  std::size_t threads;
  double seconds;
  double speedup;
  double max_diff;
};

par::ExecutionPolicy exec_for(std::size_t threads) {
  return threads == 1 ? par::ExecutionPolicy::serial()
                      : par::ExecutionPolicy::with_threads(threads);
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_bench_args(argc, argv);
  const int repeats = args.positional_int(3);
  if (!args.valid) return 2;
  const std::size_t hw = par::hardware_threads();
  std::printf("parallel_scaling: %zu hardware thread(s), best of %d runs\n\n",
              hw, repeats);

  // Fixture: the paper's Example-1 class of problem (order 150, 30 ports)
  // sampled densely enough that the pencil is a few hundred rows/columns.
  const ss::DescriptorSystem sys = bench::example1_system();
  const auto samples = sp::sample_system(
      sys, sp::log_grid(bench::kExample1FMin, bench::kExample1FMax, 40));
  const lw::TangentialData data = lw::build_tangential_data(samples);
  std::printf("Loewner pencil: %zu x %zu (30-port, t = 30 blocks)\n",
              data.left_height(), data.right_width());

  const std::vector<double> sweep_freqs =
      sp::log_grid(bench::kExample1FMin, bench::kExample1FMax, 256);
  std::printf("frequency sweep: %zu points, order-%zu model\n\n",
              sweep_freqs.size(), sys.order());

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<Row> rows;

  // --- Loewner pencil assembly ---------------------------------------------
  const auto [ll_ref, sll_ref] = lw::loewner_pair(data);
  double serial_loewner = 0.0;
  for (std::size_t t : thread_counts) {
    const auto exec = exec_for(t);
    la::CMat ll, sll;
    const double s = best_seconds(repeats, [&] {
      auto pair = lw::loewner_pair(data, exec);
      ll = std::move(pair.first);
      sll = std::move(pair.second);
    });
    if (t == 1) serial_loewner = s;
    rows.push_back({"loewner_pair", t, s, serial_loewner / s,
                    std::max(max_diff(ll, ll_ref), max_diff(sll, sll_ref))});
  }

  // --- batch frequency sweep -----------------------------------------------
  const ss::BatchEvaluator eval(sys);
  const auto sweep_ref = eval.sweep(sweep_freqs);
  double serial_sweep = 0.0;
  for (std::size_t t : thread_counts) {
    const auto exec = exec_for(t);
    std::vector<la::CMat> h;
    const double s =
        best_seconds(repeats, [&] { h = eval.sweep(sweep_freqs, exec); });
    if (t == 1) serial_sweep = s;
    double diff = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i)
      diff = std::max(diff, max_diff(h[i], sweep_ref[i]));
    rows.push_back({"batch_sweep", t, s, serial_sweep / s, diff});
  }

  // --- blocked GEMM (rows fanned over the pool) ----------------------------
  {
    la::Rng rng(512);
    const la::Mat a = la::random_matrix(512, 512, rng);
    const la::Mat b = la::random_matrix(512, 512, rng);
    const la::Mat ref = a * b;
    double serial_gemm = 0.0;
    for (std::size_t t : thread_counts) {
      const auto exec = exec_for(t);
      la::Mat c;
      const double s =
          best_seconds(repeats, [&] { c = la::multiply(a, b, exec); });
      if (t == 1) serial_gemm = s;
      rows.push_back({"gemm", t, s, serial_gemm / s, max_diff(c, ref)});
    }
  }

  // --- LU factor + n-column solve (shift-invert workload) ------------------
  {
    const std::size_t n = 320;
    la::Rng rng(11);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const la::CMat e = la::random_complex_matrix(n, n, rng);
    const la::CMat ref = la::LuDecomposition<la::Complex>(a).solve(e);
    double serial_lu = 0.0;
    for (std::size_t t : thread_counts) {
      const auto exec = exec_for(t);
      la::CMat x;
      const double s = best_seconds(repeats, [&] {
        la::LuDecomposition<la::Complex> lu(a, exec);
        x = lu.solve(e);
      });
      if (t == 1) serial_lu = s;
      rows.push_back({"lu_factor_solve", t, s, serial_lu / s,
                      max_diff(x, ref)});
    }
  }

  // --- eigensolver (Hessenberg reduction fans out) -------------------------
  {
    const std::size_t n = 192;
    la::Rng rng(12);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const auto ref = la::eigenvalues(a);
    double serial_eig = 0.0;
    for (std::size_t t : thread_counts) {
      la::EigOptions opts;
      opts.exec = exec_for(t);
      std::vector<la::Complex> ev;
      const double s =
          best_seconds(repeats, [&] { ev = la::eigenvalues(a, opts); });
      if (t == 1) serial_eig = s;
      double diff = 0.0;
      for (std::size_t i = 0; i < ev.size(); ++i)
        diff = std::max(diff, std::abs(ev[i] - ref[i]));
      rows.push_back({"eigenvalues", t, s, serial_eig / s, diff});
    }
  }

  // --- one-sided Jacobi SVD (round-robin column pairs) ---------------------
  {
    const std::size_t n = 160;
    la::Rng rng(13);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    la::SvdOptions ref_opts;
    ref_opts.algorithm = la::SvdAlgorithm::Jacobi;
    const la::Svd<la::Complex> ref = la::svd(a, ref_opts);
    double serial_svd = 0.0;
    for (std::size_t t : thread_counts) {
      la::SvdOptions opts = ref_opts;
      opts.exec = exec_for(t);
      la::Svd<la::Complex> s_out;
      const double s = best_seconds(repeats, [&] { s_out = la::svd(a, opts); });
      if (t == 1) serial_svd = s;
      double diff = std::max(max_diff(s_out.u, ref.u),
                             max_diff(s_out.v, ref.v));
      for (std::size_t i = 0; i < s_out.s.size(); ++i)
        diff = std::max(diff, std::abs(s_out.s[i] - ref.s[i]));
      rows.push_back({"svd_jacobi", t, s, serial_svd / s, diff});
    }
  }

  // --- report ---------------------------------------------------------------
  std::printf("%-16s %8s %12s %9s %12s\n", "kernel", "threads", "seconds",
              "speedup", "max |diff|");
  bool ok = true;
  for (const Row& r : rows) {
    std::printf("%-16s %8zu %12.4f %8.2fx %12.3e\n", r.kernel.c_str(),
                r.threads, r.seconds, r.speedup, r.max_diff);
    ok = ok && r.max_diff <= 1e-12;
  }
  std::printf("\ncorrectness (all parallel == serial within 1e-12): %s\n",
              ok ? "PASS" : "FAIL");
  if (hw < 4) {
    std::printf(
        "note: only %zu hardware thread(s) available — speedups are not "
        "meaningful on this host (need >= 4 cores for the 2x target)\n",
        hw);
  }

  // CSV: kernel column holds each kernel's first-occurrence index (the
  // kernel order of the table above).
  mfti::io::CsvTable csv({"kernel", "threads", "seconds", "speedup",
                          "max_diff"});
  std::vector<std::string> kernel_ids;
  for (const Row& r : rows) {
    auto it = std::find(kernel_ids.begin(), kernel_ids.end(), r.kernel);
    if (it == kernel_ids.end()) {
      kernel_ids.push_back(r.kernel);
      it = kernel_ids.end() - 1;
    }
    csv.add_row({static_cast<double>(it - kernel_ids.begin()),
                 static_cast<double>(r.threads), r.seconds, r.speedup,
                 r.max_diff});
  }
  bench::write_csv(csv, "parallel_scaling.csv");

  bench::JsonReport report("parallel_scaling");
  for (const Row& r : rows) {
    report.add(r.kernel, {{"threads", static_cast<double>(r.threads)},
                          {"seconds", r.seconds},
                          {"speedup", r.speedup},
                          {"max_diff", r.max_diff}});
  }
  if (!report.write(args.json_path)) ok = false;
  return ok ? 0 : 1;
}
