// Reproduces Fig. 1 of the paper: singular value patterns of the Loewner
// matrix LL, the shifted Loewner matrix sLL, and the pencil x*LL - sLL for
// VFTI (left subplot: 8x8, no visible drop) and MFTI (right subplot:
// 240x240 with sharp drops at 150 / 180 / 180).
//
// Setup: 8 scattering matrices sampled from an order-150 system with 30
// ports (full-rank D), as in Example 1.

#include <cstdio>

#include "bench_common.hpp"
#include "core/minimal_sampling.hpp"
#include "linalg/svd.hpp"
#include "loewner/realization.hpp"
#include "loewner/tangential.hpp"

namespace {

using namespace mfti;

void print_series(const char* title, const loewner::PencilSingularValues& sv,
                  const std::string& csv_name) {
  std::printf("\n%s  (x0 = %.3e%+.3ej)\n", title, sv.x0.real(), sv.x0.imag());
  std::printf("%6s  %14s  %14s  %14s\n", "index", "sigma(L)", "sigma(sL)",
              "sigma(xL-sL)");
  io::CsvTable csv({"index", "sigma_L", "sigma_sL", "sigma_xL_minus_sL"});
  for (std::size_t i = 0; i < sv.loewner.size(); ++i) {
    std::printf("%6zu  %14.6e  %14.6e  %14.6e\n", i + 1, sv.loewner[i],
                sv.shifted[i], sv.pencil[i]);
    csv.add_row({static_cast<double>(i + 1), sv.loewner[i], sv.shifted[i],
                 sv.pencil[i]});
  }
  bench::write_csv(csv, csv_name);
  std::printf(
      "largest-gap ranks: L -> %zu, sL -> %zu, xL-sL -> %zu (of %zu)\n",
      la::rank_by_largest_gap(sv.loewner), la::rank_by_largest_gap(sv.shifted),
      la::rank_by_largest_gap(sv.pencil), sv.loewner.size());
}

}  // namespace

int main() {
  std::printf("=== Fig. 1: singular value pattern of VFTI and MFTI ===\n");
  std::printf(
      "Example 1: 8 scattering matrices sampled from an order-150 system "
      "with 30 ports (rank(D) = 30).\n");

  const ss::DescriptorSystem sys = bench::example1_system();
  const sampling::SampleSet data = sampling::sample_system(
      sys, sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, 8));

  // VFTI: vector-format data -> 8x8 Loewner matrices.
  loewner::TangentialOptions vopts;
  vopts.uniform_t = 1;
  vopts.directions = loewner::DirectionKind::Cyclic;
  const loewner::TangentialData vdata =
      loewner::build_tangential_data(data, vopts);
  print_series("VFTI (t_i = 1, K = 8)",
               loewner::pencil_singular_values(vdata),
               "fig1_vfti.csv");

  // MFTI: matrix-format data with t_i = 30 -> 240x240 Loewner matrices.
  const loewner::TangentialData mdata =
      loewner::build_tangential_data(data, {});
  print_series("MFTI (t_i = 30, K = 240)",
               loewner::pencil_singular_values(mdata),
               "fig1_mfti.csv");

  const auto bounds = core::minimal_samples(150, 30, 30, 30);
  std::printf(
      "\nPaper expectation: VFTI shows no detectable drop at 8 samples; "
      "MFTI drops at order(Gamma)=150 for L and order+rank(D)=180 for sL "
      "and xL-sL,\nconfirming Theorem 3.5 (k_min bounds: lower=%zu, "
      "upper=%zu, empirical=%zu).\n",
      bounds.lower, bounds.upper, bounds.empirical);
  return 0;
}
