#!/usr/bin/env python3
"""Merge per-bench JSON outputs, compare against a committed baseline, and
optionally gate on the parallel-scaling speedup.

Usage:
    compare_bench.py [--baseline bench/baseline.json] [--out BENCH_pr.json]
                     [--gate] input1.json [input2.json ...]
    compare_bench.py --update-baseline BENCH_pr.json
                     [--baseline bench/baseline.json]

Each input is one document written by a bench's `--json <path>` mode
(bench/bench_common.hpp JsonReport):

    {"bench": "<name>", "metrics": [{"name": "...", "seconds": ...}, ...]}

The merged document (written to --out) is the shape committed as
bench/baseline.json:

    {"schema": "mfti-bench-v1", "benches": [<input documents>]}

With --gate the script fails (exit 1) unless every gated
bench_parallel_scaling kernel reaches the threshold at 4 threads. The
threshold lives HERE (and only here): DEFAULT_MIN_SPEEDUP below; the
MFTI_PERF_MIN_SPEEDUP environment variable overrides it for noisy runners.

With --update-baseline the script takes a merged BENCH_pr.json (the CI
perf artifact) and rewrites the committed baseline from it, so refreshing
bench/baseline.json to the runner class is one command:

    python3 bench/compare_bench.py --update-baseline BENCH_pr.json

CI also runs this against its own artifact (writing baseline_proposed.json,
uploaded as the `baseline-proposed` artifact) so a maintainer can download
and commit the runner-class baseline without rerunning anything.
"""

import argparse
import json
import os
import sys

# The CI perf gate pinned by ROADMAP.md: >= 2x at 4 threads on a 4-core
# runner. Override with MFTI_PERF_MIN_SPEEDUP (e.g. "1.5") when a runner is
# known to be noisy or undersized.
DEFAULT_MIN_SPEEDUP = 2.0

GATE_BENCH = "parallel_scaling"
GATE_THREADS = 4
# Each of these kernels must individually reach the threshold — gating a
# best-of would let a scaling collapse in one pipeline hot path hide behind
# another kernel that still scales. These two are the embarrassingly
# parallel Loewner hot paths the ROADMAP gate was pinned for; the O(n^3)
# kernels (gemm/lu/eigenvalues/svd_jacobi) are reported but not gated:
# their parallel fraction varies (Amdahl) and per-kernel thresholds would
# need per-kernel tuning first.
GATE_KERNELS = ("loewner_pair", "batch_sweep")


def load(path):
    with open(path) as fh:
        return json.load(fh)


def metric_key(metric):
    """Identity of a metric row: its name plus discriminator fields."""
    key = [metric.get("name", "?")]
    for field in ("threads", "size"):
        if field in metric:
            key.append(f"{field}={metric[field]:g}")
    return " ".join(key)


def index_baseline(baseline):
    table = {}
    for bench in baseline.get("benches", []):
        for metric in bench.get("metrics", []):
            table[(bench.get("bench"), metric_key(metric))] = metric
    return table


def gflops(metric):
    """GFLOP/s for metrics that carry a `flops` field (the GEMM/LU rows of
    bench_linalg_kernels); None otherwise."""
    flops = metric.get("flops")
    seconds = metric.get("seconds")
    if not flops or not seconds:
        return None
    return flops / seconds / 1e9


def p99_column(metric):
    """Tail latency for metrics that carry a `p99_seconds` field (the HTTP
    roundtrip rows of mfti_client bench); '-' otherwise."""
    p99 = metric.get("p99_seconds")
    if p99 is None:
        return f"{'-':>9}"
    return f"{p99 * 1e3:>7.2f}ms"


def print_comparison(merged, baseline):
    table = index_baseline(baseline) if baseline else {}
    header = (f"{'bench/metric':<52} {'baseline':>12} {'current':>12} "
              f"{'ratio':>8} {'GFLOP/s':>9} {'p99':>9}")
    print(header)
    print("-" * len(header))
    for bench in merged["benches"]:
        for metric in bench.get("metrics", []):
            seconds = metric.get("seconds")
            if seconds is None:
                continue
            label = f"{bench.get('bench')}: {metric_key(metric)}"
            base = table.get((bench.get("bench"), metric_key(metric)))
            rate = gflops(metric)
            rate_col = f"{rate:>9.2f}" if rate is not None else f"{'-':>9}"
            p99_col = p99_column(metric)
            if base and base.get("seconds"):
                ratio = seconds / base["seconds"]
                flag = "" if ratio < 1.25 else "  <-- slower"
                print(f"{label:<52} {base['seconds']:>12.4f} {seconds:>12.4f} "
                      f"{ratio:>7.2f}x {rate_col} {p99_col}{flag}")
            else:
                print(f"{label:<52} {'-':>12} {seconds:>12.4f} {'new':>8} "
                      f"{rate_col} {p99_col}")
    print()


def gate_speedup(merged):
    threshold = float(os.environ.get("MFTI_PERF_MIN_SPEEDUP",
                                     DEFAULT_MIN_SPEEDUP))
    speedups = {}
    for bench in merged["benches"]:
        if bench.get("bench") != GATE_BENCH:
            continue
        for metric in bench.get("metrics", []):
            if metric.get("threads") == GATE_THREADS and "speedup" in metric:
                name = metric.get("name", "?")
                value = metric["speedup"]
                if value is not None:
                    speedups[name] = max(speedups.get(name, 0.0), value)
    if not speedups:
        print(f"GATE FAIL: no {GATE_BENCH} metrics at {GATE_THREADS} threads "
              "in the merged report")
        return False
    source = ("env override" if "MFTI_PERF_MIN_SPEEDUP" in os.environ
              else "default")
    print(f"perf gate: {GATE_THREADS}-thread speedup >= {threshold:.2f}x "
          f"({source}) required for each of: {', '.join(GATE_KERNELS)}")
    for name, value in sorted(speedups.items()):
        gated = name in GATE_KERNELS
        print(f"  {name:<20} {value:.2f}x{'  [gated]' if gated else ''}")
    ok = True
    for name in GATE_KERNELS:
        if name not in speedups:
            print(f"GATE FAIL: kernel '{name}' missing from the "
                  f"{GATE_BENCH} report")
            ok = False
        elif speedups[name] < threshold:
            print(f"GATE FAIL: {name} reached only {speedups[name]:.2f}x "
                  f"< {threshold:.2f}x at {GATE_THREADS} threads")
            ok = False
    if ok:
        print("GATE PASS")
    return ok


def update_baseline(pr_json_path, baseline_path):
    """Rewrite the committed baseline from a merged BENCH_pr document."""
    try:
        merged = load(pr_json_path)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {pr_json_path}: {err}")
        return 1
    if merged.get("schema") != "mfti-bench-v1":
        print(f"error: {pr_json_path} is not an mfti-bench-v1 document "
              f"(schema: {merged.get('schema')!r})")
        return 1
    benches = merged.get("benches", [])
    metrics = sum(len(b.get("metrics", [])) for b in benches)
    if not benches or not metrics:
        print(f"error: {pr_json_path} carries no benchmark metrics; "
              "refusing to write an empty baseline")
        return 1
    with open(baseline_path, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")
    print(f"rewrote {baseline_path} from {pr_json_path} "
          f"({len(benches)} benches, {metrics} metrics)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("inputs", nargs="*", help="per-bench JSON files")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline (bench/baseline.json)")
    parser.add_argument("--out", default=None,
                        help="write the merged document here")
    parser.add_argument("--gate", action="store_true",
                        help="fail unless the pinned speedup is reached")
    parser.add_argument("--update-baseline", metavar="BENCH_pr.json",
                        default=None,
                        help="rewrite the baseline from a merged CI "
                             "artifact instead of comparing")
    args = parser.parse_args()

    if args.update_baseline:
        if args.inputs or args.gate or args.out:
            parser.error("--update-baseline takes no inputs and combines "
                         "with neither --gate nor --out")
        return update_baseline(args.update_baseline,
                               args.baseline or "bench/baseline.json")
    if not args.inputs:
        parser.error("per-bench JSON inputs required (or --update-baseline)")

    merged = {"schema": "mfti-bench-v1",
              "benches": [load(path) for path in args.inputs]}
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(merged, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")

    baseline = None
    if args.baseline:
        try:
            baseline = load(args.baseline)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: cannot read baseline {args.baseline}: {err}")
    print_comparison(merged, baseline)

    if args.gate and not gate_speedup(merged):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
