// Ablation E: interpolation direction choice. Algorithm 1 asks for
// orthonormal random directions; the classic VFTI literature cycles unit
// vectors through the ports. This bench compares both for MFTI (several t)
// and VFTI on clean, scarce Example-1-style data, over multiple seeds.

#include <cstdio>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "metrics/error.hpp"
#include "vfti/vfti.hpp"

int main() {
  using namespace mfti;
  std::printf("=== Ablation: random orthonormal vs cyclic unit directions "
              "===\n");

  la::Rng sys_rng(31415);
  ss::RandomSystemOptions sopts;
  sopts.order = 40;
  sopts.num_outputs = 8;
  sopts.num_inputs = 8;
  sopts.rank_d = 8;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(sopts, sys_rng);
  const auto probe =
      sampling::sample_system(sys, sampling::log_grid(10.0, 1e5, 51));
  const auto data =
      sampling::sample_system(sys, sampling::log_grid(10.0, 1e5, 14));

  std::printf("%6s  %-10s  %12s  %12s\n", "t", "seed", "ERR random",
              "ERR cyclic");
  io::CsvTable csv({"t", "seed", "err_random", "err_cyclic"});
  for (std::size_t t : {2ul, 4ul, 8ul}) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      core::MftiOptions random_opts;
      random_opts.data.uniform_t = t;
      random_opts.data.seed = seed;
      core::MftiOptions cyclic_opts = random_opts;
      cyclic_opts.data.directions = loewner::DirectionKind::Cyclic;
      const double err_r = metrics::model_error(
          core::mfti_fit(data, random_opts).model, probe);
      const double err_c = metrics::model_error(
          core::mfti_fit(data, cyclic_opts).model, probe);
      std::printf("%6zu  %-10llu  %12.3e  %12.3e\n", t,
                  static_cast<unsigned long long>(seed), err_r, err_c);
      csv.add_row({static_cast<double>(t), static_cast<double>(seed), err_r,
                   err_c});
    }
  }
  bench::write_csv(csv, "ablation_directions.csv");
  std::printf("\nReading: once the tangential data is rich enough "
              "(t >= 4 here) both choices recover the system to machine "
              "precision and the choice is immaterial — consistent with "
              "Lemma 3.1, where any full-rank R_i works. In the "
              "under-determined regime (t = 2: K barely exceeds "
              "order + rank D) neither direction family can recover the "
              "system, and seeds matter more than the family.\n");
  return 0;
}
