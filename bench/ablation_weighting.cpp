// Ablation B (DESIGN.md): per-sample weighting t_i on ill-conditioned data
// (Table-1 Test-2's clustered grid). The paper's weighting rule for Test 2
// keeps t_i >= t_j for i < j, i.e. lower-frequency (sparser) samples get
// wider interpolation blocks. Compared against uniform and inverted
// schedules.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "metrics/error.hpp"
#include "metrics/stopwatch.hpp"

namespace {

using namespace mfti;

std::vector<std::size_t> schedule(const std::string& kind, std::size_t k,
                                  std::size_t t_lo, std::size_t t_hi) {
  std::vector<std::size_t> t(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (kind == "uniform-lo") {
      t[i] = t_lo;
    } else if (kind == "uniform-hi") {
      t[i] = t_hi;
    } else if (kind == "descending") {  // paper: t_i >= t_j for i < j
      t[i] = i < k / 2 ? t_hi : t_lo;
    } else {  // ascending (control)
      t[i] = i < k / 2 ? t_lo : t_hi;
    }
  }
  return t;
}

}  // namespace

int main() {
  std::printf("=== Ablation: t_i weighting on ill-conditioned samples ===\n");
  const netgen::Circuit pdn = bench::example2_pdn_circuit();
  const sampling::SampleSet data = bench::table1_test2_data(pdn);

  std::printf("%-12s %10s %10s %12s %6s\n", "schedule", "K", "order", "ERR",
              "t(s)");
  io::CsvTable csv({"schedule_id", "k_total", "order", "err", "time_s"});
  const std::vector<std::string> kinds{"uniform-lo", "uniform-hi",
                                       "descending", "ascending"};
  for (std::size_t id = 0; id < kinds.size(); ++id) {
    core::MftiOptions opts;
    opts.data.t_per_sample = schedule(kinds[id], data.size(), 2, 3);
    opts.realization = bench::table1_realization();
    metrics::Stopwatch sw;
    const core::MftiResult res = core::mfti_fit(data, opts);
    const double t = sw.seconds();
    const double err = metrics::model_error(res.model, data);
    std::size_t total = 0;
    for (std::size_t x : opts.data.t_per_sample) total += 2 * x;
    std::printf("%-12s %10zu %10zu %12.3e %6.2f\n", kinds[id].c_str(),
                total / 2, res.order, err, t);
    csv.add_row({static_cast<double>(id), static_cast<double>(total / 2),
                 static_cast<double>(res.order), err, t});
  }
  bench::write_csv(csv, "ablation_weighting.csv");
  std::printf(
      "\nReading: the t_i schedule changes the Test-2 error by >2x at "
      "similar cost, confirming the paper's point that per-sample "
      "weighting is a useful knob on ill-conditioned data. Which band "
      "deserves the width is data-dependent: here the clustered high band "
      "holds the dense plane-resonance dynamics, so giving it wider blocks "
      "(ascending) wins — the mirror of the paper's choice on its "
      "measured board.\n");
  return 0;
}
