// Ablation A (DESIGN.md): the recursive algorithm's knobs.
//   * SelectionRule: the paper's ascending sort (best-first) vs the greedy
//     worst-first alternative;
//   * k0 (units added per iteration);
//   * threshold Th (speed/accuracy trade-off, Algorithm 2's "manually set"
//     parameter).
// All on the Table-1 Test-1 data set.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "core/recursive_mfti.hpp"
#include "metrics/error.hpp"
#include "metrics/stopwatch.hpp"

int main() {
  using namespace mfti;
  std::printf("=== Ablation: recursive MFTI (Algorithm 2) knobs ===\n");
  const netgen::Circuit pdn = bench::example2_pdn_circuit();
  const sampling::SampleSet data = bench::table1_test1_data(pdn);

  std::printf("%-12s %4s %8s  %6s %6s %10s %12s %6s\n", "selection", "k0",
              "Th", "iters", "units", "order", "ERR", "t(s)");
  io::CsvTable csv({"worst_first", "k0", "threshold", "iterations", "units",
                    "order", "err", "time_s"});

  for (const auto selection :
       {core::SelectionRule::BestFirst, core::SelectionRule::WorstFirst}) {
    for (const std::size_t k0 : {2, 5, 10}) {
      for (const double th : {0.2, 0.1, 0.05}) {
        core::RecursiveMftiOptions opts;
        opts.data.uniform_t = 2;
        opts.selection = selection;
        opts.units_per_iteration = k0;
        opts.threshold = th;
        opts.relative_error = true;
        opts.realization = bench::table1_realization();
        metrics::Stopwatch sw;
        const core::RecursiveMftiResult res =
            core::recursive_mfti_fit(data, opts);
        const double t = sw.seconds();
        const double err = metrics::model_error(res.model, data);
        const bool worst = selection == core::SelectionRule::WorstFirst;
        std::printf("%-12s %4zu %8.2f  %6zu %6zu %10zu %12.3e %6.2f\n",
                    worst ? "worst-first" : "best-first", k0, th,
                    res.iterations, res.used_units.size(), res.order, err, t);
        csv.add_row({worst ? 1.0 : 0.0, static_cast<double>(k0), th,
                     static_cast<double>(res.iterations),
                     static_cast<double>(res.used_units.size()),
                     static_cast<double>(res.order), err, t});
      }
    }
  }
  bench::write_csv(csv, "ablation_recursive.csv");
  std::printf("\nReading: smaller Th buys accuracy with more units and "
              "time. Best-first (the paper's literal ascending sort) "
              "converges only by exhausting the pool — the held-out set "
              "keeps the worst-fitted samples, biasing its mean high; "
              "worst-first retires those samples early and stops with a "
              "genuine subset. Larger k0 amortises the per-iteration "
              "realization cost at equal accuracy.\n");
  return 0;
}
