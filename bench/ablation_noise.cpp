// Ablation C (DESIGN.md): accuracy of MFTI vs VFTI as the measurement
// noise level sweeps from 1e-4 to 1e-1, at a fixed sample budget on an
// Example-1-style system (scaled down so VFTI has enough samples to be in
// its working regime — this isolates the noise robustness claim from the
// sample-efficiency claim).

#include <cstdio>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "metrics/error.hpp"
#include "vfti/vfti.hpp"

int main() {
  using namespace mfti;
  std::printf("=== Ablation: noise robustness, MFTI vs VFTI ===\n");

  la::Rng rng(424242);
  ss::RandomSystemOptions sopts;
  sopts.order = 40;
  sopts.num_outputs = 8;
  sopts.num_inputs = 8;
  sopts.rank_d = 8;
  const ss::DescriptorSystem sys = ss::random_stable_mimo(sopts, rng);
  const auto grid = sampling::log_grid(10.0, 1e5, 60);  // 60 >> 48 samples
  const sampling::SampleSet clean = sampling::sample_system(sys, grid);

  std::printf("system: order 40, 8 ports, rank(D)=8; 60 samples\n");
  std::printf("%12s  %14s  %14s\n", "noise", "ERR MFTI", "ERR VFTI");
  io::CsvTable csv({"noise", "err_mfti", "err_vfti"});
  for (const double noise : {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1}) {
    la::Rng nrng(99);
    const sampling::SampleSet data = sampling::add_noise(clean, noise, nrng);

    core::MftiOptions mopts;
    mopts.data.uniform_t = 8;
    const double err_m = metrics::model_error(
        core::mfti_fit(data, mopts).model, clean);
    const double err_v = metrics::model_error(
        vfti::vfti_fit(data).model, clean);
    std::printf("%12.1e  %14.3e  %14.3e\n", noise, err_m, err_v);
    csv.add_row({noise, err_m, err_v});
  }
  bench::write_csv(csv, "ablation_noise.csv");
  std::printf("\nReading: both degrade with noise (errors measured against "
              "the clean response); MFTI stays ahead because each sample "
              "contributes min(m,p) tangential rows of consistent data.\n");
  return 0;
}
