// Reproduces the Example-1 sample-efficiency claims around Theorem 3.5:
//   * MFTI recovers the order-150, 30-port system from ~6 matrix samples
//     (empirical k_min = (order + rank D) / min(m, p) = 6);
//   * VFTI needs ~order + rank(D) = 180 matrix samples — about 30x more.
// The bench sweeps the sample count for both methods and reports the
// recovery error on a dense probe grid, plus the detected thresholds.

#include <cstdio>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "core/minimal_sampling.hpp"
#include "metrics/error.hpp"
#include "vfti/vfti.hpp"

int main() {
  using namespace mfti;
  std::printf("=== Minimal sampling (Theorem 3.5 / Example 1 claims) ===\n");

  const ss::DescriptorSystem sys = bench::example1_system();
  const sampling::SampleSet probe = sampling::sample_system(
      sys,
      sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, 73));
  const auto bounds = core::minimal_samples(150, 30, 30, 30);
  std::printf("Theorem 3.5 bounds: lower=%zu upper=%zu empirical=%zu; VFTI "
              "needs >= %zu samples\n\n",
              bounds.lower, bounds.upper, bounds.empirical,
              core::minimal_vfti_samples(150, 30));

  const double recovered_tol = 1e-6;
  io::CsvTable csv({"method", "samples", "err"});

  std::printf("--- MFTI (t_i = 30) ---\n%8s  %12s\n", "samples", "ERR");
  std::size_t mfti_kmin = 0;
  for (std::size_t k = 2; k <= 12; ++k) {
    const auto data = sampling::sample_system(
        sys,
        sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, k));
    const double err =
        metrics::model_error(core::mfti_fit(data).model, probe);
    std::printf("%8zu  %12.3e\n", k, err);
    csv.add_row({0.0, static_cast<double>(k), err});
    if (mfti_kmin == 0 && err < recovered_tol) mfti_kmin = k;
  }

  std::printf("\n--- VFTI (t_i = 1) ---\n%8s  %12s\n", "samples", "ERR");
  std::size_t vfti_kmin = 0;
  for (std::size_t k : {8, 40, 80, 120, 150, 170, 176, 180, 184, 200, 240}) {
    const auto data = sampling::sample_system(
        sys,
        sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, k));
    const double err =
        metrics::model_error(vfti::vfti_fit(data).model, probe);
    std::printf("%8zu  %12.3e\n", k, err);
    csv.add_row({1.0, static_cast<double>(k), err});
    if (vfti_kmin == 0 && err < recovered_tol) vfti_kmin = k;
  }
  bench::write_csv(csv, "minimal_sampling.csv");

  std::printf("\nMeasured recovery thresholds (ERR < %.0e): MFTI at %zu "
              "samples, VFTI at %zu samples",
              recovered_tol, mfti_kmin, vfti_kmin);
  if (mfti_kmin > 0 && vfti_kmin > 0) {
    std::printf(" -> VFTI needs %.0fx the samples of MFTI",
                static_cast<double>(vfti_kmin) /
                    static_cast<double>(mfti_kmin));
  }
  std::printf("\nPaper: MFTI 6 samples vs VFTI ~180 samples (~30x).\n");
  return 0;
}
