// Serving-path benchmark for api::ModelHandle: repeated frequency queries
// against a fitted macromodel, comparing
//
//   naive      - ss::transfer_function per query (promote + factor each time)
//   evaluator  - a persistent ss::BatchEvaluator (promote once, factor each
//                query)
//   handle     - api::ModelHandle (promote once, factor once per *distinct*
//                frequency, LRU-cached)
//
// The workload models a service answering response queries that keep
// hitting the same frequency grid. Correctness is asserted, not assumed:
// every served matrix must match ss::transfer_function within 1e-12, and
// the cached path must beat the naive one outright (it performs 1/rounds of
// the factorization work). Exits non-zero on any violation, so CI can run
// this as a smoke test.
//
// A second section measures the multi-model fleet path: N models
// round-robin through one serving::ServingEngine (shared pool, batch
// dedup, global cache budget) against the same queries issued directly to
// N independent ModelHandles. Engine responses must match the direct path
// within 1e-12; the timing rows land in the JSON trajectory.
//
// A third section measures durability: fitting and publishing the fleet
// into a journaled registry from scratch (cold fit) against rehydrating
// it with ModelRegistry::open (warm restart). Restored responses must be
// bitwise identical to the pre-restart ones.
//
// A fourth section is the query storm: N reader threads query one model
// through the engine while a publisher republishes alternating versions
// in a tight loop. Every response is verified bitwise against the
// reference of the version it claims (mixed-version responses are a hard
// failure); the single- vs multi-reader throughput ratio lands in the
// JSON trajectory as the lock-free-read scaling signal.
//
// A fifth section measures the request-tracing overhead on the cached
// engine path: the same warm fleet batches with no obs::TraceContext
// attached (the production default when MFTI_TRACE=0, and the fast path
// every untraced request takes) against the same batches carrying a live
// context that records every span. Both rows land in the JSON; when
// MFTI_TRACE_OVERHEAD_GATE is set (a max on/off ratio, e.g. 1.02), the
// ratio is enforced and the bench fails past it — unset, it only reports,
// so the ctest smoke run cannot flake on a loaded machine.
//
// Usage: bench_model_serving [rounds] [--json <path>]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <memory>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "bench_common.hpp"
#include "metrics/stopwatch.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "sampling/grid.hpp"
#include "sampling/sampler.hpp"
#include "serving/serving.hpp"
#include "statespace/random_system.hpp"
#include "statespace/response.hpp"

namespace api = mfti::api;
namespace la = mfti::la;
namespace obs = mfti::obs;
namespace serving = mfti::serving;
namespace sp = mfti::sampling;
namespace ss = mfti::ss;

namespace {

double max_abs_diff(const la::CMat& a, const la::CMat& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = mfti::bench::parse_bench_args(argc, argv);
  const std::size_t rounds =
      static_cast<std::size_t>(args.positional_int(25));
  if (!args.valid) return 2;

  // A realistic serving model: fit a 16-port order-64 system with the
  // unified API, then serve its response.
  la::Rng rng(2026);
  ss::RandomSystemOptions sys_opts;
  sys_opts.order = 64;
  sys_opts.num_outputs = 16;
  sys_opts.num_inputs = 16;
  sys_opts.rank_d = 16;
  const ss::DescriptorSystem truth = ss::random_stable_mimo(sys_opts, rng);
  const sp::SampleSet data =
      sp::sample_system(truth, sp::log_grid(10.0, 1e5, 12));

  const auto report = api::Fitter().fit(data);
  if (!report) {
    std::printf("FIT FAILED: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("model: order %zu, %zu ports, fitted in %.3f s\n",
              report->order, report->model.num_inputs(), report->seconds);

  const auto freqs = sp::log_grid(10.0, 1e5, 32);
  const std::size_t queries = rounds * freqs.size();

  // Reference + naive timing in one pass.
  std::vector<la::CMat> reference;
  reference.reserve(freqs.size());
  for (double f : freqs) {
    reference.push_back(ss::transfer_function(
        report->model, la::Complex(0.0, 2.0 * std::numbers::pi * f)));
  }
  mfti::metrics::Stopwatch sw;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (double f : freqs) {
      ss::transfer_function(report->model,
                            la::Complex(0.0, 2.0 * std::numbers::pi * f));
    }
  }
  const double t_naive = sw.seconds();

  const ss::BatchEvaluator evaluator(report->model);
  sw.reset();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (double f : freqs) {
      evaluator.evaluate(la::Complex(0.0, 2.0 * std::numbers::pi * f));
    }
  }
  const double t_eval = sw.seconds();

  const api::ModelHandle handle(*report);
  double worst = 0.0;
  sw.reset();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      worst = std::max(worst,
                       max_abs_diff(handle.response_at(freqs[i]),
                                    reference[i]));
    }
  }
  const double t_handle = sw.seconds();
  const auto stats = handle.cache_stats();

  std::printf("\n%zu queries (%zu distinct frequencies x %zu rounds):\n",
              queries, freqs.size(), rounds);
  std::printf("  naive transfer_function : %8.3f ms\n", 1e3 * t_naive);
  std::printf("  persistent BatchEvaluator: %7.3f ms  (%.2fx)\n",
              1e3 * t_eval, t_naive / t_eval);
  std::printf("  ModelHandle (LRU cache) : %8.3f ms  (%.2fx)\n",
              1e3 * t_handle, t_naive / t_handle);
  std::printf("  cache: %zu hits, %zu misses, %zu entries\n", stats.hits,
              stats.misses, stats.entries);
  std::printf("  worst |H_handle - H_naive| = %.2e\n", worst);

  bool ok = true;
  if (worst > 1e-12) {
    std::printf("FAIL: served response deviates from transfer_function\n");
    ok = false;
  }
  if (stats.misses != freqs.size() ||
      stats.hits != queries - freqs.size()) {
    std::printf("FAIL: unexpected cache behaviour\n");
    ok = false;
  }
  if (t_handle >= t_naive) {
    std::printf("FAIL: cached serving not faster than naive re-evaluation\n");
    ok = false;
  }

  // --- multi-model fleet: one engine vs N independent handles ---------------

  constexpr std::size_t kFleet = 4;
  std::vector<ss::DescriptorSystem> fleet;
  std::vector<std::string> names;
  serving::ModelRegistry registry;
  for (std::size_t m = 0; m < kFleet; ++m) {
    ss::RandomSystemOptions fleet_opts;
    fleet_opts.order = 48;
    fleet_opts.num_outputs = 8;
    fleet_opts.num_inputs = 8;
    fleet_opts.rank_d = 8;
    fleet.push_back(ss::random_stable_mimo(fleet_opts, rng));
    names.push_back("model-" + std::to_string(m));
    registry.publish(names.back(), std::make_shared<const api::ModelHandle>(
                                       fleet.back()));
  }
  std::deque<api::ModelHandle> independent;  // handles are not movable
  for (const auto& sys : fleet) independent.emplace_back(sys);

  serving::ServingEngine engine(registry);
  const auto fleet_freqs = sp::log_grid(10.0, 1e5, 24);
  std::vector<la::Complex> fleet_points;
  for (double f : fleet_freqs) {
    fleet_points.emplace_back(0.0, 2.0 * std::numbers::pi * f);
  }

  // Direct: every query against its own per-model handle, serially.
  sw.reset();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t m = 0; m < kFleet; ++m) {
      for (const la::Complex& s : fleet_points) {
        independent[m].evaluate(s);
      }
    }
  }
  const double t_direct = sw.seconds();

  // Engine: the same queries as round-robin batches through one router
  // (shared pool, in-batch dedup, one snapshot resolve per request).
  sw.reset();
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<serving::EvalRequest> batch;
    batch.reserve(kFleet);
    for (std::size_t m = 0; m < kFleet; ++m) {
      batch.push_back({names[m], fleet_points});
    }
    for (const auto& response : engine.evaluate(batch)) {
      if (!response) {
        std::printf("FAIL: engine: %s\n",
                    response.status().to_string().c_str());
        return 1;
      }
    }
  }
  const double t_engine = sw.seconds();
  const auto fleet_stats = engine.stats();

  // Parity pass outside the timed region (correctness is warm/cold
  // agnostic; the extra direct evaluations must not skew t_engine).
  double worst_engine = 0.0;
  {
    std::vector<serving::EvalRequest> batch;
    for (std::size_t m = 0; m < kFleet; ++m) {
      batch.push_back({names[m], fleet_points});
    }
    const auto responses = engine.evaluate(batch);
    for (std::size_t m = 0; m < kFleet; ++m) {
      if (!responses[m]) return 1;
      for (std::size_t i = 0; i < fleet_points.size(); ++i) {
        worst_engine = std::max(
            worst_engine,
            max_abs_diff(responses[m]->values[i],
                         independent[m].evaluate(fleet_points[i])));
      }
    }
  }

  std::printf("\nfleet: %zu models x %zu points x %zu rounds:\n", kFleet,
              fleet_points.size(), rounds);
  std::printf("  independent ModelHandles: %8.3f ms\n", 1e3 * t_direct);
  std::printf("  one ServingEngine       : %8.3f ms  (%.2fx, %zu workers)\n",
              1e3 * t_engine, t_direct / t_engine, engine.worker_count());
  std::printf("  aggregated cache: %zu hits, %zu misses, %zu entries\n",
              fleet_stats.cache.hits, fleet_stats.cache.misses,
              fleet_stats.cache.entries);
  std::printf("  worst |H_engine - H_direct| = %.2e\n", worst_engine);
  if (worst_engine > 1e-12) {
    std::printf("FAIL: engine deviates from direct handle evaluation\n");
    ok = false;
  }

  // --- durability: cold fit vs warm restart ---------------------------------
  //
  // Cold path: fit every fleet model from samples and publish it into a
  // durable (journaled) registry. Warm path: ModelRegistry::open replays
  // the journal back into a serving fleet. The ratio is the restart-time
  // win persistence buys; the restored answers must stay bitwise equal.

  const std::string fleet_dir = "bench_serving_fleet";
  std::filesystem::remove_all(fleet_dir);
  std::vector<sp::SampleSet> fleet_data;  // "measurements", not timed
  for (const auto& sys : fleet) {
    fleet_data.push_back(
        sp::sample_system(sys, sp::log_grid(10.0, 1e5, 16)));
  }
  std::vector<la::CMat> cold_responses;
  double t_cold = 0.0;
  {
    auto durable = serving::ModelRegistry::open(fleet_dir);
    if (!durable) {
      std::printf("FAIL: open: %s\n", durable.status().to_string().c_str());
      return 1;
    }
    sw.reset();
    for (std::size_t m = 0; m < kFleet; ++m) {
      const auto fit = api::Fitter().fit(fleet_data[m]);
      if (!fit) {
        std::printf("FAIL: cold fit: %s\n",
                    fit.status().to_string().c_str());
        return 1;
      }
      (*durable)->publish(names[m], *fit);
    }
    t_cold = sw.seconds();
    for (std::size_t m = 0; m < kFleet; ++m) {
      cold_responses.push_back(
          (*durable)->lookup(names[m])->response_at(fleet_freqs[0]));
    }
  }  // the cold fleet is gone; only snapshot + journal remain
  sw.reset();
  auto warm = serving::ModelRegistry::open(fleet_dir);
  const double t_warm = sw.seconds();
  if (!warm) {
    std::printf("FAIL: warm restart: %s\n",
                warm.status().to_string().c_str());
    return 1;
  }
  if ((*warm)->size() != kFleet) {
    std::printf("FAIL: warm restart restored %zu of %zu models\n",
                (*warm)->size(), kFleet);
    ok = false;
  }
  for (std::size_t m = 0; m < kFleet; ++m) {
    const auto handle = (*warm)->lookup(names[m]);
    if (!handle ||
        max_abs_diff(handle->response_at(fleet_freqs[0]),
                     cold_responses[m]) != 0.0) {
      std::printf("FAIL: '%s' not bitwise identical after restart\n",
                  names[m].c_str());
      ok = false;
    }
  }
  std::filesystem::remove_all(fleet_dir);

  std::printf("\ndurability: %zu models:\n", kFleet);
  std::printf("  cold fit + publish      : %8.3f ms\n", 1e3 * t_cold);
  std::printf("  warm restart (replay)   : %8.3f ms  (%.2fx)\n",
              1e3 * t_warm, t_cold / t_warm);

  // --- query storm: concurrent readers vs a republish loop ------------------
  //
  // N reader threads hammer one model through the engine while a publisher
  // republishes alternating versions as fast as it can. Readers verify
  // every response bitwise against the reference of the version the
  // response claims (odd = sys_a, even = sys_b): a single mixed-version
  // value is a hard failure. Registry reads are RCU (one atomic load), so
  // reader throughput should scale with threads even under the publish
  // storm — the scaling ratio is reported for multi-core runs; only
  // correctness is asserted (a single-core container cannot scale).

  const ss::DescriptorSystem storm_a = [&rng] {
    ss::RandomSystemOptions o;
    o.order = 24;
    o.num_outputs = 4;
    o.num_inputs = 4;
    o.rank_d = 4;
    return ss::random_stable_mimo(o, rng);
  }();
  const ss::DescriptorSystem storm_b = [&rng] {
    ss::RandomSystemOptions o;
    o.order = 24;
    o.num_outputs = 4;
    o.num_inputs = 4;
    o.rank_d = 4;
    return ss::random_stable_mimo(o, rng);
  }();
  std::vector<la::Complex> storm_points;
  for (double f : sp::log_grid(10.0, 1e5, 8)) {
    storm_points.emplace_back(0.0, 2.0 * std::numbers::pi * f);
  }
  std::vector<la::CMat> storm_ref_a;
  std::vector<la::CMat> storm_ref_b;
  for (const la::Complex& s : storm_points) {
    storm_ref_a.push_back(ss::transfer_function(storm_a, s));
    storm_ref_b.push_back(ss::transfer_function(storm_b, s));
  }

  const std::size_t storm_rounds = rounds * 8;
  // Runs one storm: returns {seconds, queries, publishes, mixed}.
  struct StormResult {
    double seconds = 0.0;
    std::size_t queries = 0;
    std::uint64_t publishes = 0;
    std::size_t mixed = 0;
    std::uint64_t coalesced = 0;
  };
  const auto run_storm = [&](std::size_t readers) {
    serving::ModelRegistry storm_registry;
    storm_registry.publish(
        "storm", std::make_shared<const api::ModelHandle>(storm_a));
    serving::ServingEngine storm_engine(storm_registry);
    StormResult result;
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> mixed{0};
    std::atomic<std::size_t> served{0};
    mfti::metrics::Stopwatch storm_sw;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < readers; ++t) {
      threads.emplace_back([&] {
        for (std::size_t r = 0; r < storm_rounds; ++r) {
          const auto response =
              storm_engine.evaluate({"storm", storm_points});
          if (!response) {
            mixed.fetch_add(1);  // the model must never disappear
            continue;
          }
          const auto& ref = (response->version % 2 == 1) ? storm_ref_a
                                                         : storm_ref_b;
          for (std::size_t i = 0; i < storm_points.size(); ++i) {
            if (max_abs_diff(response->values[i], ref[i]) != 0.0) {
              mixed.fetch_add(1);
              break;
            }
          }
          served.fetch_add(1);
        }
      });
    }
    std::uint64_t publishes = 0;
    std::thread publisher([&] {
      // do-while: at least one republish even if the scheduler never runs
      // this thread before the readers finish.
      do {
        const auto& sys = (publishes % 2 == 0) ? storm_b : storm_a;
        storm_registry.publish(
            "storm", std::make_shared<const api::ModelHandle>(sys));
        ++publishes;
      } while (!stop.load(std::memory_order_relaxed));
    });
    for (auto& t : threads) t.join();
    result.seconds = storm_sw.seconds();
    stop.store(true);
    publisher.join();
    result.queries = served.load();
    result.publishes = publishes;
    result.mixed = mixed.load();
    result.coalesced = storm_engine.coalesced_total();
    return result;
  };

  const std::size_t max_readers =
      std::max<std::size_t>(2, mfti::parallel::hardware_threads());
  const StormResult storm_1 = run_storm(1);
  const StormResult storm_n = run_storm(max_readers);
  const double qps_1 =
      static_cast<double>(storm_1.queries) / storm_1.seconds;
  const double qps_n =
      static_cast<double>(storm_n.queries) / storm_n.seconds;

  std::printf("\nquery storm: %zu rounds x %zu points, republish loop:\n",
              storm_rounds, storm_points.size());
  std::printf("  1 reader   : %8.3f ms, %9.0f q/s, %llu publishes\n",
              1e3 * storm_1.seconds, qps_1,
              static_cast<unsigned long long>(storm_1.publishes));
  std::printf(
      "  %zu readers : %8.3f ms, %9.0f q/s, %llu publishes, "
      "%llu coalesced (%.2fx)\n",
      max_readers, 1e3 * storm_n.seconds, qps_n,
      static_cast<unsigned long long>(storm_n.publishes),
      static_cast<unsigned long long>(storm_n.coalesced), qps_n / qps_1);
  if (storm_1.mixed != 0 || storm_n.mixed != 0) {
    std::printf("FAIL: %zu mixed-version (or failed) storm responses\n",
                storm_1.mixed + storm_n.mixed);
    ok = false;
  }
  if (storm_1.queries != storm_rounds ||
      storm_n.queries != max_readers * storm_rounds) {
    std::printf("FAIL: storm readers lost queries\n");
    ok = false;
  }
  if (storm_1.publishes == 0 || storm_n.publishes == 0) {
    std::printf("FAIL: the publish storm never published\n");
    ok = false;
  }

  // --- tracing overhead: cached engine eval, no context vs live context -----
  //
  // The fleet engine's cache is warm from the multi-model section, so both
  // runs measure the pure serving path: registry acquire + cache hit +
  // solve per point. The untraced run is the exact code path a production
  // request takes with tracing disabled (trace == nullptr skips every
  // clock read); the traced run pays begin/record/finish per batch. Each
  // variant runs five interleaved passes in alternating order and keeps
  // its best: the per-variant minimum converges to the machine's floor,
  // so a scheduler hiccup or frequency ramp hits individual samples, not
  // the ratio of floors the gate reads.

  obs::TraceOptions trace_opts;  // defaults: enabled, ring 128
  obs::TraceCollector trace_collector(trace_opts);
  const std::size_t trace_rounds = rounds * 4;
  const auto eval_rounds = [&](bool traced) {
    mfti::metrics::Stopwatch trace_sw;
    for (std::size_t r = 0; r < trace_rounds; ++r) {
      std::shared_ptr<obs::TraceContext> ctx;
      if (traced) ctx = trace_collector.begin("");
      std::vector<serving::EvalRequest> batch;
      batch.reserve(kFleet);
      for (std::size_t m = 0; m < kFleet; ++m) {
        serving::EvalRequest request{names[m], fleet_points};
        request.trace = ctx;
        batch.push_back(std::move(request));
      }
      for (const auto& response : engine.evaluate(batch)) {
        if (!response) {
          std::printf("FAIL: traced engine eval: %s\n",
                      response.status().to_string().c_str());
          std::exit(1);
        }
      }
      if (traced) trace_collector.finish(ctx, "/bench", 200, 0.0);
    }
    return trace_sw.seconds();
  };
  double t_trace_off = 0.0;
  double t_trace_on = 0.0;
  for (int pass = 0; pass < 5; ++pass) {
    const bool on_first = (pass % 2) != 0;
    const double first = eval_rounds(on_first);
    const double second = eval_rounds(!on_first);
    const double on = on_first ? first : second;
    const double off = on_first ? second : first;
    t_trace_off = pass == 0 ? off : std::min(t_trace_off, off);
    t_trace_on = pass == 0 ? on : std::min(t_trace_on, on);
  }
  const double trace_ratio = t_trace_on / t_trace_off;

  std::printf("\ntracing overhead: %zu rounds x %zu models x %zu points "
              "(warm cache):\n",
              trace_rounds, kFleet, fleet_points.size());
  std::printf("  tracing off (no context): %8.3f ms\n", 1e3 * t_trace_off);
  std::printf("  tracing on  (full spans): %8.3f ms  (%.4fx)\n",
              1e3 * t_trace_on, trace_ratio);
  if (const char* gate = std::getenv("MFTI_TRACE_OVERHEAD_GATE")) {
    const double max_ratio = std::atof(gate);
    if (max_ratio <= 1.0) {
      std::printf("FAIL: MFTI_TRACE_OVERHEAD_GATE='%s' is not a ratio > 1\n",
                  gate);
      ok = false;
    } else if (trace_ratio > max_ratio) {
      std::printf("FAIL: tracing overhead %.4fx exceeds the %.4fx gate\n",
                  trace_ratio, max_ratio);
      ok = false;
    } else {
      std::printf("  gate: %.4fx <= %.4fx (MFTI_TRACE_OVERHEAD_GATE)\n",
                  trace_ratio, max_ratio);
    }
  }

  mfti::bench::JsonReport json("model_serving");
  json.add("naive_transfer_function",
           {{"seconds", t_naive}, {"queries", static_cast<double>(queries)}});
  json.add("batch_evaluator",
           {{"seconds", t_eval}, {"speedup", t_naive / t_eval}});
  json.add("model_handle_lru",
           {{"seconds", t_handle},
            {"speedup", t_naive / t_handle},
            {"cache_hits", static_cast<double>(stats.hits)},
            {"cache_misses", static_cast<double>(stats.misses)}});
  json.add("multi_model_direct",
           {{"seconds", t_direct}, {"models", static_cast<double>(kFleet)}});
  json.add("multi_model_engine",
           {{"seconds", t_engine},
            {"speedup", t_direct / t_engine},
            {"models", static_cast<double>(kFleet)},
            {"cache_hits", static_cast<double>(fleet_stats.cache.hits)},
            {"cache_misses",
             static_cast<double>(fleet_stats.cache.misses)}});
  json.add("cold_fit",
           {{"seconds", t_cold}, {"models", static_cast<double>(kFleet)}});
  json.add("warm_restart", {{"seconds", t_warm},
                            {"speedup", t_cold / t_warm},
                            {"models", static_cast<double>(kFleet)}});
  json.add("query_storm_single",
           {{"seconds", storm_1.seconds},
            {"threads", 1.0},
            {"queries", static_cast<double>(storm_1.queries)},
            {"qps", qps_1},
            {"publishes", static_cast<double>(storm_1.publishes)}});
  json.add("query_storm",
           {{"seconds", storm_n.seconds},
            {"threads", static_cast<double>(max_readers)},
            {"queries", static_cast<double>(storm_n.queries)},
            {"qps", qps_n},
            {"publishes", static_cast<double>(storm_n.publishes)},
            {"coalesced", static_cast<double>(storm_n.coalesced)},
            {"reader_scaling", qps_n / qps_1}});
  json.add("cached_eval_trace_off",
           {{"seconds", t_trace_off},
            {"models", static_cast<double>(kFleet)}});
  json.add("cached_eval_trace_on",
           {{"seconds", t_trace_on},
            {"models", static_cast<double>(kFleet)},
            {"overhead_ratio", trace_ratio}});
  if (!json.write(args.json_path)) ok = false;
  std::printf(ok ? "OK\n" : "NOT OK\n");
  return ok ? 0 : 1;
}
