// Serving-path benchmark for api::ModelHandle: repeated frequency queries
// against a fitted macromodel, comparing
//
//   naive      - ss::transfer_function per query (promote + factor each time)
//   evaluator  - a persistent ss::BatchEvaluator (promote once, factor each
//                query)
//   handle     - api::ModelHandle (promote once, factor once per *distinct*
//                frequency, LRU-cached)
//
// The workload models a service answering response queries that keep
// hitting the same frequency grid. Correctness is asserted, not assumed:
// every served matrix must match ss::transfer_function within 1e-12, and
// the cached path must beat the naive one outright (it performs 1/rounds of
// the factorization work). Exits non-zero on any violation, so CI can run
// this as a smoke test.
//
// Usage: bench_model_serving [rounds] [--json <path>]

#include <algorithm>
#include <cstdio>
#include <numbers>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "bench_common.hpp"
#include "metrics/stopwatch.hpp"
#include "sampling/grid.hpp"
#include "sampling/sampler.hpp"
#include "statespace/random_system.hpp"
#include "statespace/response.hpp"

namespace api = mfti::api;
namespace la = mfti::la;
namespace sp = mfti::sampling;
namespace ss = mfti::ss;

namespace {

double max_abs_diff(const la::CMat& a, const la::CMat& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = mfti::bench::parse_bench_args(argc, argv);
  const std::size_t rounds =
      static_cast<std::size_t>(args.positional_int(25));
  if (!args.valid) return 2;

  // A realistic serving model: fit a 16-port order-64 system with the
  // unified API, then serve its response.
  la::Rng rng(2026);
  ss::RandomSystemOptions sys_opts;
  sys_opts.order = 64;
  sys_opts.num_outputs = 16;
  sys_opts.num_inputs = 16;
  sys_opts.rank_d = 16;
  const ss::DescriptorSystem truth = ss::random_stable_mimo(sys_opts, rng);
  const sp::SampleSet data =
      sp::sample_system(truth, sp::log_grid(10.0, 1e5, 12));

  const auto report = api::Fitter().fit(data);
  if (!report) {
    std::printf("FIT FAILED: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("model: order %zu, %zu ports, fitted in %.3f s\n",
              report->order, report->model.num_inputs(), report->seconds);

  const auto freqs = sp::log_grid(10.0, 1e5, 32);
  const std::size_t queries = rounds * freqs.size();

  // Reference + naive timing in one pass.
  std::vector<la::CMat> reference;
  reference.reserve(freqs.size());
  for (double f : freqs) {
    reference.push_back(ss::transfer_function(
        report->model, la::Complex(0.0, 2.0 * std::numbers::pi * f)));
  }
  mfti::metrics::Stopwatch sw;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (double f : freqs) {
      ss::transfer_function(report->model,
                            la::Complex(0.0, 2.0 * std::numbers::pi * f));
    }
  }
  const double t_naive = sw.seconds();

  const ss::BatchEvaluator evaluator(report->model);
  sw.reset();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (double f : freqs) {
      evaluator.evaluate(la::Complex(0.0, 2.0 * std::numbers::pi * f));
    }
  }
  const double t_eval = sw.seconds();

  const api::ModelHandle handle(*report);
  double worst = 0.0;
  sw.reset();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      worst = std::max(worst,
                       max_abs_diff(handle.response_at(freqs[i]),
                                    reference[i]));
    }
  }
  const double t_handle = sw.seconds();
  const auto stats = handle.cache_stats();

  std::printf("\n%zu queries (%zu distinct frequencies x %zu rounds):\n",
              queries, freqs.size(), rounds);
  std::printf("  naive transfer_function : %8.3f ms\n", 1e3 * t_naive);
  std::printf("  persistent BatchEvaluator: %7.3f ms  (%.2fx)\n",
              1e3 * t_eval, t_naive / t_eval);
  std::printf("  ModelHandle (LRU cache) : %8.3f ms  (%.2fx)\n",
              1e3 * t_handle, t_naive / t_handle);
  std::printf("  cache: %zu hits, %zu misses, %zu entries\n", stats.hits,
              stats.misses, stats.entries);
  std::printf("  worst |H_handle - H_naive| = %.2e\n", worst);

  bool ok = true;
  if (worst > 1e-12) {
    std::printf("FAIL: served response deviates from transfer_function\n");
    ok = false;
  }
  if (stats.misses != freqs.size() ||
      stats.hits != queries - freqs.size()) {
    std::printf("FAIL: unexpected cache behaviour\n");
    ok = false;
  }
  if (t_handle >= t_naive) {
    std::printf("FAIL: cached serving not faster than naive re-evaluation\n");
    ok = false;
  }

  mfti::bench::JsonReport json("model_serving");
  json.add("naive_transfer_function",
           {{"seconds", t_naive}, {"queries", static_cast<double>(queries)}});
  json.add("batch_evaluator",
           {{"seconds", t_eval}, {"speedup", t_naive / t_eval}});
  json.add("model_handle_lru",
           {{"seconds", t_handle},
            {"speedup", t_naive / t_handle},
            {"cache_hits", static_cast<double>(stats.hits)},
            {"cache_misses", static_cast<double>(stats.misses)}});
  if (!json.write(args.json_path)) ok = false;
  std::printf(ok ? "OK\n" : "NOT OK\n");
  return ok ? 0 : 1;
}
