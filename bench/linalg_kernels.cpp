// Micro-benchmarks of the dense linear-algebra kernels everything else is
// built on. The GEMM/LU rows double as the acceptance checks for the
// blocked kernels: the cache-blocked product must beat the naive triple
// loop and the blocked right-looking LU must beat the per-step rank-1
// elimination, both at 512x512 (the bench exits non-zero otherwise, and
// also on any parity violation), so CI can run this as a hard perf smoke.
//
// Flakiness discipline: every acceptance comparison uses the best of at
// least 3 repetitions per side, and the MFTI_KERNEL_MIN_SPEEDUP
// environment variable (default 1.0) scales the required ratio down for
// known-loaded runners — mirroring compare_bench.py's
// MFTI_PERF_MIN_SPEEDUP escape hatch.
//
// The SIMD rows (gemm_scalar / gemm_avx2) force one kernel table each via
// detail::multiply_rows_using, independent of the active dispatch level,
// so the scalar-vs-AVX2 throughput ratio is visible from any build.
//
// Usage: bench_linalg_kernels [repeats] [--json <path>]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/multiply.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"
#include "linalg/reference.hpp"
#include "linalg/simd/dispatch.hpp"
#include "linalg/svd.hpp"
#include "metrics/stopwatch.hpp"
#include "parallel/thread_pool.hpp"

namespace la = mfti::la;
namespace par = mfti::parallel;
namespace bench = mfti::bench;
namespace simd = mfti::la::simd;

namespace {

// The seed's unblocked i-k-j triple loop, kept verbatim as the GEMM
// reference the blocked kernel is measured against.
template <typename T>
la::Matrix<T> naive_multiply(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  la::Matrix<T> c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T* crow = &c(i, 0);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      const T* brow = &b(k, 0);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

// Blocked product through one forced kernel table (scalar or AVX2).
template <typename T>
la::Matrix<T> multiply_with(const la::Matrix<T>& a, const la::Matrix<T>& b,
                            const simd::KernelTable<T>& kt) {
  la::Matrix<T> c(a.rows(), b.cols());
  la::detail::multiply_rows_using(a, b, c, 0, a.rows(), kt);
  return c;
}

using bench::best_seconds;
using bench::max_diff;

double min_speedup_from_env() {
  const char* env = std::getenv("MFTI_KERNEL_MIN_SPEEDUP");
  if (env == nullptr || *env == '\0') return 1.0;
  char* end = nullptr;
  const double value = std::strtod(env, &end);
  if (end == env || *end != '\0' || !(value > 0.0)) {
    // A malformed or non-positive override would silently neutralize the
    // acceptance gates; refuse it and keep the default.
    std::fprintf(stderr,
                 "ignoring MFTI_KERNEL_MIN_SPEEDUP='%s' (want a positive "
                 "number); using 1.0\n",
                 env);
    return 1.0;
  }
  return value;
}

struct Row {
  std::string name;
  std::size_t size;
  double seconds;
  double flops;  // 0: not reported
};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_bench_args(argc, argv);
  const int repeats = args.positional_int(3);
  if (!args.valid) return 2;
  // Acceptance comparisons always take the best of >= 3 repetitions so a
  // single scheduler hiccup on a loaded runner cannot flip them.
  const int accept_repeats = std::max(repeats, 3);
  const double min_speedup = min_speedup_from_env();
  const bool avx2 = simd::cpu_supports_avx2_fma() && simd::avx2_compiled();
  std::printf(
      "linalg_kernels: best of %d run(s), %zu hardware thread(s), "
      "simd dispatch: %s (avx2 %s)\n\n",
      repeats, par::hardware_threads(),
      simd::level_name(simd::active_level()),
      avx2 ? "available" : "unavailable");

  std::vector<Row> rows;
  bool ok = true;

  // --- GEMM: naive vs blocked vs blocked-parallel --------------------------
  // Both sizes sit above the blocked-path byte threshold (384*384*8 >
  // kGemmBlockedMinBytes), so each row genuinely measures the tiled
  // kernel; products at or below the threshold run the same axpy sweep as
  // the naive reference and would compare an algorithm against itself.
  double gemm_speedup_512 = 0.0;
  double simd_speedup_512 = 0.0;
  for (std::size_t n : {std::size_t{384}, std::size_t{512}}) {
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    la::Rng rng(n);
    const la::Mat a = la::random_matrix(n, n, rng);
    const la::Mat b = la::random_matrix(n, n, rng);
    la::Mat naive_c, blocked_c, parallel_c;
    const double t_naive = best_seconds(
        accept_repeats, [&] { naive_c = naive_multiply(a, b); });
    const double t_blocked =
        best_seconds(accept_repeats, [&] { blocked_c = a * b; });
    const auto exec = par::ExecutionPolicy::with_threads();
    const double t_par =
        best_seconds(repeats, [&] { parallel_c = la::multiply(a, b, exec); });
    rows.push_back({"gemm_naive", n, t_naive, flops});
    rows.push_back({"gemm_blocked", n, t_blocked, flops});
    rows.push_back({"gemm_parallel", n, t_par, flops});

    // Parity: blocked reorders the k-accumulation (tolerance check);
    // parallel chunks run the identical blocked kernel (exact check).
    const double scale = std::max(naive_c.max_abs(), 1.0);
    if (max_diff(naive_c, blocked_c) > 1e-12 * scale) {
      std::printf("FAIL: blocked GEMM deviates from naive at n=%zu\n", n);
      ok = false;
    }
    if (max_diff(blocked_c, parallel_c) != 0.0) {
      std::printf("FAIL: parallel GEMM not bitwise equal to serial at "
                  "n=%zu\n", n);
      ok = false;
    }
    if (n == 512) {
      gemm_speedup_512 = t_naive / t_blocked;
      if (t_blocked * min_speedup >= t_naive) {
        std::printf("FAIL: blocked GEMM (%.4fs) not %.2fx faster than "
                    "naive (%.4fs) at 512x512\n",
                    t_blocked, min_speedup, t_naive);
        ok = false;
      }

      // Forced kernel tables: the scalar-vs-AVX2 dispatch headline.
      la::Mat scalar_c, avx2_c;
      const auto& scalar_kt = simd::kernels_for<double>(simd::Level::Scalar);
      const double t_scalar = best_seconds(
          accept_repeats, [&] { scalar_c = multiply_with(a, b, scalar_kt); });
      rows.push_back({"gemm_scalar", n, t_scalar, flops});
      if (avx2) {
        const auto& avx2_kt = simd::kernels_for<double>(simd::Level::Avx2);
        const double t_avx2 = best_seconds(
            accept_repeats, [&] { avx2_c = multiply_with(a, b, avx2_kt); });
        rows.push_back({"gemm_avx2", n, t_avx2, flops});
        simd_speedup_512 = t_scalar / t_avx2;
        if (max_diff(scalar_c, avx2_c) > 1e-12 * scale) {
          std::printf("FAIL: AVX2 GEMM deviates from scalar at n=%zu\n", n);
          ok = false;
        }
      }
    }
  }

  // --- LU: blocked right-looking vs per-step rank-1 ------------------------
  // The reference is the shared frozen seed algorithm
  // (la::reference::RankOneLu) — the same baseline the blocked-parity
  // unit tests certify against.
  double lu_speedup_512 = 0.0;
  {
    const std::size_t n = 512;
    const double flops = 2.0 / 3.0 * static_cast<double>(n) * n * n;
    la::Rng rng(4);
    const la::Mat a = la::random_matrix(n, n, rng);
    const double t_rank1 = best_seconds(accept_repeats, [&] {
      const la::reference::RankOneLu<double> ref(a);
      static_cast<void>(ref.lu);
    });
    const double t_blocked = best_seconds(accept_repeats, [&] {
      const la::LuDecomposition<double> lu(a);
      static_cast<void>(lu.is_singular());
    });
    {
      const la::reference::RankOneLu<double> ref(a);
      const la::LuDecomposition<double> lu(a);
      const double scale = std::max(ref.lu.max_abs(), 1.0);
      if (max_diff(ref.lu, lu.packed_lu()) > 1e-11 * scale) {
        std::printf("FAIL: blocked LU deviates from rank-1 LU at n=%zu\n",
                    n);
        ok = false;
      }
    }
    rows.push_back({"lu_rank1_real", n, t_rank1, flops});
    rows.push_back({"lu_blocked_real", n, t_blocked, flops});
    lu_speedup_512 = t_rank1 / t_blocked;
    if (t_blocked * min_speedup >= t_rank1) {
      std::printf("FAIL: blocked LU (%.4fs) not %.2fx faster than rank-1 "
                  "(%.4fs) at 512x512\n",
                  t_blocked, min_speedup, t_rank1);
      ok = false;
    }
  }

  // --- LU: factor + n-column solve (the shift-invert workload) -------------
  {
    const std::size_t n = 256;
    la::Rng rng(3);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const la::CMat e = la::random_complex_matrix(n, n, rng);
    const double t = best_seconds(repeats, [&] {
      la::LuDecomposition<la::Complex> lu(a);
      static_cast<void>(lu.solve(e));
    });
    rows.push_back({"lu_factor_solve_complex", n, t, 0.0});
  }

  // --- eigensolvers ---------------------------------------------------------
  {
    const std::size_t n = 128;
    la::Rng rng(8);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const double t =
        best_seconds(repeats, [&] { static_cast<void>(la::eigenvalues(a)); });
    rows.push_back({"eig_complex", n, t, 0.0});
  }
  {
    const std::size_t n = 160;
    la::Rng rng(9);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const la::CMat e = la::random_complex_matrix(n, n, rng);
    const double t = best_seconds(repeats, [&] {
      static_cast<void>(la::generalized_eigenvalues(a, e));
    });
    rows.push_back({"generalized_eig_complex", n, t, 0.0});
  }

  // --- SVD ------------------------------------------------------------------
  {
    const std::size_t n = 96;
    la::Rng rng(6);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    la::SvdOptions opts;
    opts.algorithm = la::SvdAlgorithm::Jacobi;
    const double t =
        best_seconds(repeats, [&] { static_cast<void>(la::svd(a, opts)); });
    rows.push_back({"svd_jacobi_complex", n, t, 0.0});
  }
  {
    const std::size_t n = 256;
    la::Rng rng(7);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    la::SvdOptions opts;
    opts.algorithm = la::SvdAlgorithm::GolubKahan;
    const double t =
        best_seconds(repeats, [&] { static_cast<void>(la::svd(a, opts)); });
    rows.push_back({"svd_golub_kahan_complex", n, t, 0.0});
  }

  // --- QR -------------------------------------------------------------------
  {
    const std::size_t n = 256;
    la::Rng rng(5);
    const la::Mat a = la::random_matrix(n, n, rng);
    const double t = best_seconds(repeats, [&] {
      la::QrDecomposition<double> qr(a);
      static_cast<void>(qr.rcond_estimate());
    });
    rows.push_back({"qr_real", n, t, 0.0});
  }

  // --- report ---------------------------------------------------------------
  std::printf("%-26s %6s %12s %10s\n", "kernel", "size", "seconds",
              "GFLOP/s");
  for (const Row& r : rows) {
    if (r.flops > 0.0 && r.seconds > 0.0) {
      std::printf("%-26s %6zu %12.4f %10.2f\n", r.name.c_str(), r.size,
                  r.seconds, r.flops / r.seconds / 1e9);
    } else {
      std::printf("%-26s %6zu %12.4f %10s\n", r.name.c_str(), r.size,
                  r.seconds, "-");
    }
  }
  std::printf("\nblocked GEMM speedup over naive at 512x512: %.2fx\n",
              gemm_speedup_512);
  if (avx2) {
    std::printf("AVX2 GEMM speedup over scalar at 512x512:   %.2fx\n",
                simd_speedup_512);
  }
  std::printf("blocked LU speedup over rank-1 at 512x512:  %.2fx\n",
              lu_speedup_512);
  std::printf("acceptance (blocked beats naive GEMM and rank-1 LU at 512, "
              "parity holds): %s\n",
              ok ? "PASS" : "FAIL");

  bench::JsonReport report("linalg_kernels");
  for (const Row& r : rows) {
    if (r.flops > 0.0) {
      report.add(r.name, {{"size", static_cast<double>(r.size)},
                          {"seconds", r.seconds},
                          {"flops", r.flops}});
    } else {
      report.add(r.name, {{"size", static_cast<double>(r.size)},
                          {"seconds", r.seconds}});
    }
  }
  report.add("gemm_blocked_vs_naive_512", {{"speedup", gemm_speedup_512}});
  if (avx2) {
    report.add("gemm_avx2_vs_scalar_512", {{"speedup", simd_speedup_512}});
  }
  report.add("lu_blocked_vs_rank1_512", {{"speedup", lu_speedup_512}});
  if (!report.write(args.json_path)) ok = false;
  return ok ? 0 : 1;
}
