// Micro-benchmarks of the dense linear-algebra kernels everything else is
// built on (google-benchmark). Useful to see where the Loewner pipeline's
// time goes and to catch performance regressions in the substrate.

#include <benchmark/benchmark.h>

#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"
#include "linalg/svd.hpp"

namespace la = mfti::la;

namespace {

la::Mat random_mat(std::size_t n, std::uint64_t seed) {
  la::Rng rng(seed);
  return la::random_matrix(n, n, rng);
}

la::CMat random_cmat(std::size_t n, std::uint64_t seed) {
  la::Rng rng(seed);
  return la::random_complex_matrix(n, n, rng);
}

void BM_MatMulReal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Mat a = random_mat(n, 1);
  const la::Mat b = random_mat(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatMulReal)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Complexity();

void BM_LuSolveComplex(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::CMat a = random_cmat(n, 3);
  const la::CMat b = random_cmat(n, 4).block(0, 0, n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::solve(a, b));
  }
}
BENCHMARK(BM_LuSolveComplex)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_QrReal(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Mat a = random_mat(n, 5);
  for (auto _ : state) {
    la::QrDecomposition<double> qr(a);
    benchmark::DoNotOptimize(qr.rcond_estimate());
  }
}
BENCHMARK(BM_QrReal)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_SvdJacobiComplex(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::CMat a = random_cmat(n, 6);
  la::SvdOptions opts;
  opts.algorithm = la::SvdAlgorithm::Jacobi;
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd(a, opts));
  }
}
BENCHMARK(BM_SvdJacobiComplex)->Arg(16)->Arg(32)->Arg(64)->Arg(96);

void BM_SvdGolubKahanComplex(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::CMat a = random_cmat(n, 6);
  la::SvdOptions opts;
  opts.algorithm = la::SvdAlgorithm::GolubKahan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::svd(a, opts));
  }
}
BENCHMARK(BM_SvdGolubKahanComplex)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Arg(192)->Arg(256);

void BM_SingularValuesOnly(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::CMat a = random_cmat(n, 7);
  la::SvdOptions opts;
  opts.algorithm = la::SvdAlgorithm::GolubKahan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::singular_values(a, opts));
  }
}
BENCHMARK(BM_SingularValuesOnly)->Arg(64)->Arg(128)->Arg(256);

void BM_EigenvaluesComplex(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::CMat a = random_cmat(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::eigenvalues(a));
  }
}
BENCHMARK(BM_EigenvaluesComplex)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
