// Micro-benchmarks of the dense linear-algebra kernels everything else is
// built on. The GEMM rows double as the acceptance check for the blocked
// kernel: the cache-blocked product must beat the naive triple loop on
// 512x512 (the bench exits non-zero otherwise, and also on any parity
// violation), so CI can run this as a hard perf smoke.
//
// Usage: bench_linalg_kernels [repeats] [--json <path>]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/multiply.hpp"
#include "linalg/qr.hpp"
#include "linalg/random.hpp"
#include "linalg/svd.hpp"
#include "metrics/stopwatch.hpp"
#include "parallel/thread_pool.hpp"

namespace la = mfti::la;
namespace par = mfti::parallel;
namespace bench = mfti::bench;

namespace {

// The seed's unblocked i-k-j triple loop, kept verbatim as the GEMM
// reference the blocked kernel is measured against.
template <typename T>
la::Matrix<T> naive_multiply(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  la::Matrix<T> c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    T* crow = &c(i, 0);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a(i, k);
      if (aik == T{}) continue;
      const T* brow = &b(k, 0);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

using bench::best_seconds;
using bench::max_diff;

struct Row {
  std::string name;
  std::size_t size;
  double seconds;
};

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::parse_bench_args(argc, argv);
  const int repeats = args.positional_int(3);
  if (!args.valid) return 2;
  std::printf("linalg_kernels: best of %d run(s), %zu hardware thread(s)\n\n",
              repeats, par::hardware_threads());

  std::vector<Row> rows;
  bool ok = true;

  // --- GEMM: naive vs blocked vs blocked-parallel --------------------------
  // Both sizes sit above the blocked-path byte threshold (384*384*8 >
  // kGemmBlockedMinBytes), so each row genuinely measures the tiled
  // kernel; products at or below the threshold run the same axpy sweep as
  // the naive reference and would compare an algorithm against itself.
  double gemm_speedup_512 = 0.0;
  for (std::size_t n : {std::size_t{384}, std::size_t{512}}) {
    la::Rng rng(n);
    const la::Mat a = la::random_matrix(n, n, rng);
    const la::Mat b = la::random_matrix(n, n, rng);
    la::Mat naive_c, blocked_c, parallel_c;
    const double t_naive =
        best_seconds(repeats, [&] { naive_c = naive_multiply(a, b); });
    const double t_blocked = best_seconds(repeats, [&] { blocked_c = a * b; });
    const auto exec = par::ExecutionPolicy::with_threads();
    const double t_par =
        best_seconds(repeats, [&] { parallel_c = la::multiply(a, b, exec); });
    rows.push_back({"gemm_naive", n, t_naive});
    rows.push_back({"gemm_blocked", n, t_blocked});
    rows.push_back({"gemm_parallel", n, t_par});

    // Parity: blocked reorders the k-accumulation (tolerance check);
    // parallel chunks run the identical blocked kernel (exact check).
    const double scale = std::max(naive_c.max_abs(), 1.0);
    if (max_diff(naive_c, blocked_c) > 1e-12 * scale) {
      std::printf("FAIL: blocked GEMM deviates from naive at n=%zu\n", n);
      ok = false;
    }
    if (max_diff(blocked_c, parallel_c) != 0.0) {
      std::printf("FAIL: parallel GEMM not bitwise equal to serial at "
                  "n=%zu\n", n);
      ok = false;
    }
    if (n == 512) {
      gemm_speedup_512 = t_naive / t_blocked;
      if (t_blocked >= t_naive) {
        std::printf("FAIL: blocked GEMM (%.4fs) not faster than naive "
                    "(%.4fs) at 512x512\n", t_blocked, t_naive);
        ok = false;
      }
    }
  }

  // --- LU: factor + n-column solve (the shift-invert workload) -------------
  {
    const std::size_t n = 256;
    la::Rng rng(3);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const la::CMat e = la::random_complex_matrix(n, n, rng);
    const double t = best_seconds(repeats, [&] {
      la::LuDecomposition<la::Complex> lu(a);
      static_cast<void>(lu.solve(e));
    });
    rows.push_back({"lu_factor_solve_complex", n, t});
  }

  // --- eigensolvers ---------------------------------------------------------
  {
    const std::size_t n = 128;
    la::Rng rng(8);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const double t =
        best_seconds(repeats, [&] { static_cast<void>(la::eigenvalues(a)); });
    rows.push_back({"eig_complex", n, t});
  }
  {
    const std::size_t n = 160;
    la::Rng rng(9);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    const la::CMat e = la::random_complex_matrix(n, n, rng);
    const double t = best_seconds(repeats, [&] {
      static_cast<void>(la::generalized_eigenvalues(a, e));
    });
    rows.push_back({"generalized_eig_complex", n, t});
  }

  // --- SVD ------------------------------------------------------------------
  {
    const std::size_t n = 96;
    la::Rng rng(6);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    la::SvdOptions opts;
    opts.algorithm = la::SvdAlgorithm::Jacobi;
    const double t =
        best_seconds(repeats, [&] { static_cast<void>(la::svd(a, opts)); });
    rows.push_back({"svd_jacobi_complex", n, t});
  }
  {
    const std::size_t n = 256;
    la::Rng rng(7);
    const la::CMat a = la::random_complex_matrix(n, n, rng);
    la::SvdOptions opts;
    opts.algorithm = la::SvdAlgorithm::GolubKahan;
    const double t =
        best_seconds(repeats, [&] { static_cast<void>(la::svd(a, opts)); });
    rows.push_back({"svd_golub_kahan_complex", n, t});
  }

  // --- QR -------------------------------------------------------------------
  {
    const std::size_t n = 256;
    la::Rng rng(5);
    const la::Mat a = la::random_matrix(n, n, rng);
    const double t = best_seconds(repeats, [&] {
      la::QrDecomposition<double> qr(a);
      static_cast<void>(qr.rcond_estimate());
    });
    rows.push_back({"qr_real", n, t});
  }

  // --- report ---------------------------------------------------------------
  std::printf("%-26s %6s %12s\n", "kernel", "size", "seconds");
  for (const Row& r : rows) {
    std::printf("%-26s %6zu %12.4f\n", r.name.c_str(), r.size, r.seconds);
  }
  std::printf("\nblocked GEMM speedup over naive at 512x512: %.2fx\n",
              gemm_speedup_512);
  std::printf("acceptance (blocked beats naive at 512, parity holds): %s\n",
              ok ? "PASS" : "FAIL");

  bench::JsonReport report("linalg_kernels");
  for (const Row& r : rows) {
    report.add(r.name,
               {{"size", static_cast<double>(r.size)}, {"seconds", r.seconds}});
  }
  report.add("gemm_blocked_vs_naive_512",
             {{"speedup", gemm_speedup_512}});
  if (!report.write(args.json_path)) ok = false;
  return ok ? 0 : 1;
}
