// Reproduces Fig. 2 of the paper: Bode diagram (input 1 -> output 1) of the
// original Example-1 system and the models recovered by MFTI and VFTI from
// the same 8 samples. The MFTI model overlays the original; the VFTI model
// does not (8 samples are adequate for MFTI but inadequate for VFTI).

#include <cstdio>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "metrics/error.hpp"
#include "statespace/response.hpp"
#include "vfti/vfti.hpp"

int main() {
  using namespace mfti;
  std::printf("=== Fig. 2: Bode diagrams of original and recovered systems "
              "===\n");

  const ss::DescriptorSystem sys = bench::example1_system();
  const sampling::SampleSet data = sampling::sample_system(
      sys, sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, 8));

  const core::MftiResult mfti_fit = core::mfti_fit(data);
  const vfti::VftiResult vfti_fit = vfti::vfti_fit(data);
  std::printf("MFTI model order: %zu, VFTI model order: %zu\n",
              mfti_fit.order, vfti_fit.order);

  const std::vector<double> sweep =
      sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, 100);
  const auto mag_orig = ss::bode_magnitude(sys, sweep, 0, 0);
  const auto mag_mfti = ss::bode_magnitude(mfti_fit.model, sweep, 0, 0);
  const auto mag_vfti = ss::bode_magnitude(vfti_fit.model, sweep, 0, 0);

  std::printf("%14s  %14s  %14s  %14s\n", "freq (Hz)", "|H11| original",
              "|H11| MFTI", "|H11| VFTI");
  io::CsvTable csv({"freq_hz", "mag_original", "mag_mfti", "mag_vfti"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%14.6e  %14.6e  %14.6e  %14.6e\n", sweep[i], mag_orig[i],
                mag_mfti[i], mag_vfti[i]);
    csv.add_row({sweep[i], mag_orig[i], mag_mfti[i], mag_vfti[i]});
  }
  bench::write_csv(csv, "fig2_bode.csv");

  const sampling::SampleSet dense = sampling::sample_system(sys, sweep);
  std::printf("\nERR over the dense sweep: MFTI = %.3e, VFTI = %.3e\n",
              metrics::model_error(mfti_fit.model, dense),
              metrics::model_error(vfti_fit.model, dense));
  std::printf("Paper expectation: the MFTI curve overlays the original; the "
              "VFTI curve deviates visibly.\n");
  return 0;
}
