// Ablation D: the frequency-scaling design choice inside the realization
// (DESIGN.md §3). The Loewner and shifted-Loewner matrices differ in scale
// by ~2 pi f_max; without balancing them the two-sided stacked SVDs are
// dominated by sLL and the order detection degrades. This bench quantifies
// that on the Example-1 setup at several sample counts.

#include <cstdio>

#include "bench_common.hpp"
#include "core/mfti.hpp"
#include "metrics/error.hpp"

int main() {
  using namespace mfti;
  std::printf("=== Ablation: frequency scaling in the Loewner realization "
              "===\n");
  const ss::DescriptorSystem sys = bench::example1_system();
  const sampling::SampleSet probe = sampling::sample_system(
      sys, sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax,
                              61));

  std::printf("%8s  %10s  %14s  %10s  %14s\n", "samples", "order(on)",
              "ERR(on)", "order(off)", "ERR(off)");
  io::CsvTable csv({"samples", "order_on", "err_on", "order_off", "err_off"});
  for (std::size_t k : {6, 8, 10}) {
    const auto data = sampling::sample_system(
        sys,
        sampling::log_grid(bench::kExample1FMin, bench::kExample1FMax, k));
    core::MftiOptions on;
    on.realization.frequency_scaling = true;
    core::MftiOptions off;
    off.realization.frequency_scaling = false;
    const auto fit_on = core::mfti_fit(data, on);
    const auto fit_off = core::mfti_fit(data, off);
    const double err_on = metrics::model_error(fit_on.model, probe);
    const double err_off = metrics::model_error(fit_off.model, probe);
    std::printf("%8zu  %10zu  %14.3e  %10zu  %14.3e\n", k, fit_on.order,
                err_on, fit_off.order, err_off);
    csv.add_row({static_cast<double>(k), static_cast<double>(fit_on.order),
                 err_on, static_cast<double>(fit_off.order), err_off});
  }
  // Noisy, tolerance-truncated case (Table-1 conditions): here the
  // singular-value ordering of the stacked pencil decides which directions
  // survive, so the balance can matter.
  const netgen::Circuit pdn = bench::example2_pdn_circuit();
  const sampling::SampleSet noisy = bench::table1_test1_data(pdn);
  std::printf("\nnoisy PDN (Table-1 Test-1 data, t = 3, tol 1e-2):\n");
  for (const bool scaling : {true, false}) {
    core::MftiOptions opts;
    opts.data.uniform_t = 3;
    opts.realization = bench::table1_realization();
    opts.realization.frequency_scaling = scaling;
    const auto fit = core::mfti_fit(noisy, opts);
    const double err = metrics::model_error(fit.model, noisy);
    std::printf("  scaling %-3s: order %3zu, ERR %.3e\n",
                scaling ? "on" : "off", fit.order, err);
    csv.add_row({scaling ? 200.0 : 201.0, static_cast<double>(fit.order),
                 err, 0.0, 0.0});
  }
  bench::write_csv(csv, "ablation_scaling.csv");
  std::printf("\nReading: on clean data with a sharp rank gap the balance "
              "is immaterial (the gap dominates either way); on noisy "
              "tolerance-truncated data it changes which subspace is kept. "
              "It is cheap, so it stays on by default.\n");
  return 0;
}
